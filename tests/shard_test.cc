// Sharded-driver tier: DriverConfig parse/validate matrix, session quota
// enforcement (deterministic lifetime caps, shared tenant state, the
// screen-before-quota ordering), the 4-shard bitwise equivalence against
// the unsharded StreamDriver on the same admitted stream (PageRank, SSSP,
// KickStarter), shard-partition invariants, the FrontierBuilder bitset
// pool, and the adaptive splice-vs-rebuild apply strategy. The concurrency
// cases are part of `ctest -L concurrency` and run under
// GRAPHBOLT_SANITIZE=thread via tools/run_sanitized_tests.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/engine/vertex_subset.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/kickstarter/kickstarter_engine.h"
#include "src/parallel/thread_pool.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// ----- DriverConfig: flag parsing ------------------------------------------

// Builds an ArgParser carrying the canonical driver surface and parses the
// given flag strings into it.
bool ParseFlags(std::vector<std::string> flags, ArgParser* args) {
  std::vector<char*> argv;
  std::vector<std::string> storage;  // ArgParser copies values out during Parse
  storage.push_back("shard_test");
  for (std::string& f : flags) {
    storage.push_back(std::move(f));
  }
  for (std::string& s : storage) {
    argv.push_back(s.data());
  }
  DriverConfig::RegisterFlags(*args);
  return args->Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(DriverConfigCli, DefaultsRoundTrip) {
  ArgParser args("t");
  ASSERT_TRUE(ParseFlags({}, &args));
  DriverConfig config;
  std::string error;
  ASSERT_TRUE(config.FromCli(args, &error)) << error;
  const DriverConfig defaults;
  EXPECT_EQ(config.shards, defaults.shards);
  EXPECT_EQ(config.batch_size, defaults.batch_size);
  EXPECT_DOUBLE_EQ(config.flush_interval_seconds, defaults.flush_interval_seconds);
  EXPECT_EQ(config.overflow, defaults.overflow);
  EXPECT_EQ(config.coalesce, defaults.coalesce);
  EXPECT_EQ(config.fast_path, defaults.fast_path);
}

TEST(DriverConfigCli, FastPathFlagRoundTrip) {
  ArgParser args("t");
  ASSERT_TRUE(ParseFlags({"--fast-path"}, &args));
  DriverConfig config;
  std::string error;
  ASSERT_TRUE(config.FromCli(args, &error)) << error;
  EXPECT_TRUE(config.fast_path);
  // fast_path has no cross-field constraint: it must validate with and
  // without shards, checkpointing, and the sentinel surface.
  EXPECT_TRUE(config.Validate().empty()) << config.Validate();
  config.shards = 4;
  config.checkpoint_dir = "/tmp/ckpt";
  EXPECT_TRUE(config.Validate().empty()) << config.Validate();
  EXPECT_TRUE(config.ToStreamOptions<GraphBoltEngine<PageRank>>().fast_path);
}

TEST(DriverConfigCli, FullSurfaceParses) {
  ArgParser args("t");
  ASSERT_TRUE(ParseFlags({"--shards", "4", "--batch-size", "512", "--flush-ms", "20",
                          "--max-pending-batches", "8", "--overflow", "drop",
                          "--maintenance-budget", "4096", "--checkpoint-every", "3",
                          "--max-batch-edges", "9000", "--default-quota", "100:200:300",
                          "--tenant-quotas", "alice=5000:20000,bob=0:0:1000"},
                         &args));
  DriverConfig config;
  std::string error;
  ASSERT_TRUE(config.FromCli(args, &error)) << error;
  EXPECT_EQ(config.shards, 4u);
  EXPECT_EQ(config.batch_size, 512u);
  EXPECT_DOUBLE_EQ(config.flush_interval_seconds, 0.02);
  EXPECT_EQ(config.max_pending_batches, 8u);
  EXPECT_EQ(config.overflow, OverflowPolicy::kDropNewest);
  EXPECT_EQ(config.maintenance_budget_edges, 4096u);
  EXPECT_EQ(config.checkpoint_every, 3u);
  EXPECT_EQ(config.admission.max_batch_mutations, 9000u);
  EXPECT_DOUBLE_EQ(config.default_quota.mutations_per_second, 100.0);
  EXPECT_DOUBLE_EQ(config.default_quota.burst_mutations, 200.0);
  EXPECT_EQ(config.default_quota.max_total_mutations, 300u);
  ASSERT_EQ(config.tenant_quotas.size(), 2u);
  EXPECT_DOUBLE_EQ(config.tenant_quotas.at("alice").mutations_per_second, 5000.0);
  EXPECT_DOUBLE_EQ(config.tenant_quotas.at("alice").burst_mutations, 20000.0);
  EXPECT_EQ(config.tenant_quotas.at("bob").max_total_mutations, 1000u);
  EXPECT_DOUBLE_EQ(config.QuotaFor("alice").mutations_per_second, 5000.0);
  EXPECT_DOUBLE_EQ(config.QuotaFor("nobody").mutations_per_second, 100.0);
}

// Each rejection must carry an actionable message naming the flag and what
// it got.
struct RejectCase {
  std::vector<std::string> flags;
  std::string expect_in_error;
};

TEST(DriverConfigCli, RejectMatrix) {
  const std::vector<RejectCase> cases = {
      {{"--shards", "0"}, "--shards"},
      {{"--batch-size", "0"}, "--batch-size"},
      {{"--flush-ms", "0"}, "--flush-ms"},
      {{"--max-pending-batches", "0"}, "--max-pending-batches"},
      {{"--overflow", "sideways"}, "block | drop | shed | shed-oldest | degrade"},
      {{"--maintenance-budget", "0"}, "--maintenance-budget"},
      {{"--checkpoint-every", "-1"}, "--checkpoint-every"},
      {{"--max-batch-edges", "-5"}, "--max-batch-edges"},
      {{"--watchdog-ms", "-1"}, "--watchdog-ms"},
      {{"--default-quota", "fast"}, "rate"},
      {{"--default-quota", "10:20:30:40"}, "too many fields"},
      {{"--tenant-quotas", "alice"}, "tenant=rate"},
      {{"--tenant-quotas", "=5000"}, "tenant=rate"},
      {{"--tenant-quotas", "alice=abc"}, "alice"},
      // Cross-field: shed needs a durable shed log — sharded or not.
      {{"--overflow", "shed"}, "checkpoint"},
      {{"--shards", "4", "--overflow", "shed"}, "checkpoint"},
  };
  for (const RejectCase& c : cases) {
    ArgParser args("t");
    ASSERT_TRUE(ParseFlags(c.flags, &args));
    DriverConfig config;
    std::string error;
    EXPECT_FALSE(config.FromCli(args, &error)) << "flags should have been rejected";
    EXPECT_NE(error.find(c.expect_in_error), std::string::npos)
        << "error \"" << error << "\" should mention \"" << c.expect_in_error << "\"";
  }
}

TEST(DriverConfigCli, ShedAcceptedWithCheckpointDirUnsharded) {
  ArgParser args("t");
  ASSERT_TRUE(ParseFlags({"--overflow", "shed", "--checkpoint-dir", "/tmp/ckpt"}, &args));
  DriverConfig config;
  std::string error;
  ASSERT_TRUE(config.FromCli(args, &error)) << error;
  EXPECT_EQ(config.overflow, OverflowPolicy::kShedToWal);
}

// The sentinel layer is shard-aware: every watchdog/shed/degrade
// combination that is valid unsharded is valid at shards > 1 too (the
// former "future work" rejections are gone).
TEST(DriverConfigCli, SentinelAcceptMatrixUnderShards) {
  struct AcceptCase {
    std::vector<std::string> flags;
    OverflowPolicy overflow;
    double watchdog_seconds;
  };
  const std::vector<AcceptCase> cases = {
      {{"--shards", "2", "--overflow", "degrade"}, OverflowPolicy::kDegrade, 0.0},
      {{"--shards", "4", "--overflow", "shed-oldest"}, OverflowPolicy::kShedOldest, 0.0},
      {{"--shards", "4", "--overflow", "shed", "--checkpoint-dir", "/tmp/ckpt"},
       OverflowPolicy::kShedToWal, 0.0},
      {{"--shards", "2", "--watchdog-ms", "100"}, OverflowPolicy::kBlock, 0.1},
      {{"--shards", "4", "--overflow", "shed", "--checkpoint-dir", "/tmp/ckpt",
        "--watchdog-ms", "250"},
       OverflowPolicy::kShedToWal, 0.25},
      {{"--shards", "8", "--overflow", "degrade", "--watchdog-ms", "50",
        "--quarantine-dir", "/tmp/q"},
       OverflowPolicy::kDegrade, 0.05},
  };
  for (const AcceptCase& c : cases) {
    ArgParser args("t");
    ASSERT_TRUE(ParseFlags(c.flags, &args));
    DriverConfig config;
    std::string error;
    EXPECT_TRUE(config.FromCli(args, &error))
        << "flags should have been accepted, got: " << error;
    EXPECT_EQ(config.overflow, c.overflow);
    EXPECT_DOUBLE_EQ(config.watchdog_stall_seconds, c.watchdog_seconds);
    EXPECT_TRUE(config.Validate().empty()) << config.Validate();
  }
}

TEST(DriverConfigQuota, ParseQuotaMatrix) {
  TenantQuota quota;
  std::string error;
  ASSERT_TRUE(DriverConfig::ParseQuota("5000", &quota, &error));
  EXPECT_DOUBLE_EQ(quota.mutations_per_second, 5000.0);
  EXPECT_DOUBLE_EQ(quota.burst_mutations, 0.0);
  EXPECT_EQ(quota.max_total_mutations, 0u);
  ASSERT_TRUE(DriverConfig::ParseQuota("5000:20000", &quota, &error));
  EXPECT_DOUBLE_EQ(quota.burst_mutations, 20000.0);
  ASSERT_TRUE(DriverConfig::ParseQuota("0:0:1000000", &quota, &error));
  EXPECT_EQ(quota.max_total_mutations, 1000000u);
  EXPECT_FALSE(DriverConfig::ParseQuota("", &quota, &error));
  EXPECT_FALSE(DriverConfig::ParseQuota("-5", &quota, &error));
  EXPECT_FALSE(DriverConfig::ParseQuota("1:2:3:4", &quota, &error));
  EXPECT_FALSE(DriverConfig::ParseQuota("1:2:x", &quota, &error));
  EXPECT_FALSE(DriverConfig::ParseQuota("1:2:-3", &quota, &error));
}

TEST(DriverConfigOverflow, NamesRoundTrip) {
  for (const char* name : {"block", "drop", "shed", "shed-oldest", "degrade"}) {
    OverflowPolicy policy;
    ASSERT_TRUE(DriverConfig::ParseOverflow(name, &policy)) << name;
    EXPECT_STREQ(DriverConfig::OverflowName(policy), name);
  }
  OverflowPolicy untouched = OverflowPolicy::kBlock;
  EXPECT_FALSE(DriverConfig::ParseOverflow("sideways", &untouched));
  EXPECT_EQ(untouched, OverflowPolicy::kBlock);
}

// Environment overrides apply on top of the current values; the test
// scrubs every GRAPHBOLT_* it sets.
class DriverConfigEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const char* name :
         {"GRAPHBOLT_SHARDS", "GRAPHBOLT_BATCH_SIZE", "GRAPHBOLT_OVERFLOW",
          "GRAPHBOLT_FLUSH_MS", "GRAPHBOLT_TENANT_QUOTAS", "GRAPHBOLT_DEFAULT_QUOTA",
          "GRAPHBOLT_WATCHDOG_MS", "GRAPHBOLT_QUARANTINE_DIR",
          "GRAPHBOLT_MAX_BATCH_EDGES", "GRAPHBOLT_CHECKPOINT_DIR",
          "GRAPHBOLT_MAX_PENDING_BATCHES", "GRAPHBOLT_FAST_PATH"}) {
      ::unsetenv(name);
    }
  }
};

TEST_F(DriverConfigEnvTest, OverridesApplyOnTop) {
  ::setenv("GRAPHBOLT_SHARDS", "8", 1);
  ::setenv("GRAPHBOLT_OVERFLOW", "drop", 1);
  ::setenv("GRAPHBOLT_TENANT_QUOTAS", "carol=0:0:42", 1);
  DriverConfig config;
  config.batch_size = 2048;  // untouched by env
  std::string error;
  ASSERT_TRUE(config.FromEnv(&error)) << error;
  EXPECT_EQ(config.shards, 8u);
  EXPECT_EQ(config.overflow, OverflowPolicy::kDropNewest);
  EXPECT_EQ(config.batch_size, 2048u);
  EXPECT_EQ(config.tenant_quotas.at("carol").max_total_mutations, 42u);
}

TEST_F(DriverConfigEnvTest, MalformedValueNamesTheVariable) {
  ::setenv("GRAPHBOLT_SHARDS", "many", 1);
  DriverConfig config;
  std::string error;
  EXPECT_FALSE(config.FromEnv(&error));
  EXPECT_NE(error.find("GRAPHBOLT_SHARDS"), std::string::npos) << error;
  EXPECT_NE(error.find("many"), std::string::npos) << error;
}

TEST_F(DriverConfigEnvTest, FastPathEnvAcceptsBinaryRejectsElse) {
  ::setenv("GRAPHBOLT_FAST_PATH", "1", 1);
  DriverConfig config;
  std::string error;
  ASSERT_TRUE(config.FromEnv(&error)) << error;
  EXPECT_TRUE(config.fast_path);
  ::setenv("GRAPHBOLT_FAST_PATH", "0", 1);
  DriverConfig off;
  ASSERT_TRUE(off.FromEnv(&error)) << error;
  EXPECT_FALSE(off.fast_path);
  ::setenv("GRAPHBOLT_FAST_PATH", "yes", 1);
  DriverConfig bad;
  EXPECT_FALSE(bad.FromEnv(&error));
  EXPECT_NE(error.find("GRAPHBOLT_FAST_PATH"), std::string::npos) << error;
}

TEST_F(DriverConfigEnvTest, CrossFieldValidationStillRuns) {
  // Sharded watchdog/shed/degrade are legal now, so the cross-field check
  // that still has teeth is shed-without-a-shed-log.
  ::setenv("GRAPHBOLT_SHARDS", "4", 1);
  ::setenv("GRAPHBOLT_OVERFLOW", "shed", 1);
  DriverConfig config;
  std::string error;
  EXPECT_FALSE(config.FromEnv(&error));
  EXPECT_NE(error.find("checkpoint"), std::string::npos) << error;
  // The same config with a checkpoint dir in the environment passes.
  ::setenv("GRAPHBOLT_CHECKPOINT_DIR", "/tmp/ckpt", 1);
  DriverConfig fixed;
  std::string fixed_error;
  EXPECT_TRUE(fixed.FromEnv(&fixed_error)) << fixed_error;
  EXPECT_EQ(fixed.overflow, OverflowPolicy::kShedToWal);
}

TEST_F(DriverConfigEnvTest, WatchdogAndDegradeAcceptedShardedFromEnv) {
  ::setenv("GRAPHBOLT_SHARDS", "4", 1);
  ::setenv("GRAPHBOLT_WATCHDOG_MS", "100", 1);
  ::setenv("GRAPHBOLT_OVERFLOW", "degrade", 1);
  DriverConfig config;
  std::string error;
  ASSERT_TRUE(config.FromEnv(&error)) << error;
  EXPECT_EQ(config.shards, 4u);
  EXPECT_DOUBLE_EQ(config.watchdog_stall_seconds, 0.1);
  EXPECT_EQ(config.overflow, OverflowPolicy::kDegrade);
}

// The documented precedence chain: defaults, then FromCli overwrites them,
// then FromEnv applies on top of the CLI values — for every sentinel flag.
TEST_F(DriverConfigEnvTest, PrecedenceEnvOverCliOverDefaultPerSentinelFlag) {
  const DriverConfig defaults;
  ArgParser args("t");
  ASSERT_TRUE(ParseFlags({"--watchdog-ms", "200", "--overflow", "shed-oldest",
                          "--quarantine-dir", "/tmp/cli-q", "--max-batch-edges", "777",
                          "--max-pending-batches", "16"},
                         &args));
  DriverConfig config;
  std::string error;
  ASSERT_TRUE(config.FromCli(args, &error)) << error;
  // CLI over default.
  EXPECT_NE(config.watchdog_stall_seconds, defaults.watchdog_stall_seconds);
  EXPECT_DOUBLE_EQ(config.watchdog_stall_seconds, 0.2);
  EXPECT_EQ(config.overflow, OverflowPolicy::kShedOldest);
  EXPECT_EQ(config.quarantine_dir, "/tmp/cli-q");
  EXPECT_EQ(config.admission.max_batch_mutations, 777u);
  EXPECT_EQ(config.max_pending_batches, 16u);

  // Env over CLI, but only for the variables actually set: watchdog-ms and
  // overflow move, the rest keep their CLI values.
  ::setenv("GRAPHBOLT_WATCHDOG_MS", "500", 1);
  ::setenv("GRAPHBOLT_OVERFLOW", "degrade", 1);
  ASSERT_TRUE(config.FromEnv(&error)) << error;
  EXPECT_DOUBLE_EQ(config.watchdog_stall_seconds, 0.5);
  EXPECT_EQ(config.overflow, OverflowPolicy::kDegrade);
  EXPECT_EQ(config.quarantine_dir, "/tmp/cli-q");
  EXPECT_EQ(config.admission.max_batch_mutations, 777u);
  EXPECT_EQ(config.max_pending_batches, 16u);

  // And the remaining sentinel surface overrides too.
  ::setenv("GRAPHBOLT_QUARANTINE_DIR", "/tmp/env-q", 1);
  ::setenv("GRAPHBOLT_MAX_BATCH_EDGES", "888", 1);
  ::setenv("GRAPHBOLT_MAX_PENDING_BATCHES", "32", 1);
  ASSERT_TRUE(config.FromEnv(&error)) << error;
  EXPECT_EQ(config.quarantine_dir, "/tmp/env-q");
  EXPECT_EQ(config.admission.max_batch_mutations, 888u);
  EXPECT_EQ(config.max_pending_batches, 32u);

  // GRAPHBOLT_WATCHDOG_MS=0 is an explicit off switch, not "unset".
  ::setenv("GRAPHBOLT_WATCHDOG_MS", "0", 1);
  ASSERT_TRUE(config.FromEnv(&error)) << error;
  EXPECT_DOUBLE_EQ(config.watchdog_stall_seconds, 0.0);
}

// ----- Session quotas -------------------------------------------------------

// A small driver fixture around a PageRank engine.
struct SmallService {
  explicit SmallService(DriverConfig config)
      : full(GenerateRmat(400, 3000, {.seed = 51})),
        split(SplitForStreaming(full, 0.5, 52)),
        graph(split.initial),
        engine(&graph, PageRank{}) {
    engine.InitialCompute();
    driver.emplace(&engine, std::move(config));
  }

  EdgeList full;
  StreamSplit split;
  MutableGraph graph;
  GraphBoltEngine<PageRank> engine;
  std::optional<ShardedDriver<GraphBoltEngine<PageRank>>> driver;
};

MutationBatch AddBatch(VertexId base, size_t count) {
  MutationBatch batch;
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(
        EdgeMutation::Add(base + static_cast<VertexId>(i % 97), base + 1 + (i % 53), 1.0f));
  }
  return batch;
}

TEST(SessionQuota, LifetimeCapAdmitsExactlyTheAllowance) {
  ThreadPool::SetNumThreads(1);
  DriverConfig config;
  config.shards = 4;
  config.tenant_quotas["greedy"] = TenantQuota{0.0, 0.0, 1000};
  SmallService service(std::move(config));
  auto session = service.driver->OpenSession("greedy");

  // 100 batches of 100: whole-batch-or-nothing against a 1000 cap admits
  // exactly the first 10, deterministically (no wall clock involved).
  size_t accepted_total = 0;
  for (size_t i = 0; i < 100; ++i) {
    accepted_total += session.IngestBatch(AddBatch(static_cast<VertexId>(i), 100));
  }
  EXPECT_EQ(accepted_total, 1000u);
  const TenantStats stats = session.stats();
  EXPECT_EQ(stats.mutations_accepted, 1000u);
  EXPECT_EQ(stats.mutations_quota_rejected, 9000u);
  EXPECT_EQ(stats.batches_quota_rejected, 90u);
  service.driver->PrepQuery();
  const EngineStats driver_stats = service.driver->stats();
  EXPECT_EQ(driver_stats.mutations_quota_rejected, 9000u);
  EXPECT_EQ(driver_stats.mutations_enqueued, 1000u);
}

TEST(SessionQuota, WholeBatchOrNothingNeverPartiallyAdmits) {
  ThreadPool::SetNumThreads(1);
  DriverConfig config;
  config.tenant_quotas["capped"] = TenantQuota{0.0, 0.0, 1000};
  SmallService service(std::move(config));
  auto session = service.driver->OpenSession("capped");

  // Batches of 300 against a 1000 cap: 3 admitted (900), then every later
  // batch overshoots the remaining 100 and is rejected intact.
  size_t accepted_total = 0;
  for (size_t i = 0; i < 10; ++i) {
    accepted_total += session.IngestBatch(AddBatch(static_cast<VertexId>(i), 300));
  }
  EXPECT_EQ(accepted_total, 900u);
  EXPECT_EQ(session.stats().mutations_accepted, 900u);
}

TEST(SessionQuota, SessionsOfOneTenantShareTheAllowance) {
  ThreadPool::SetNumThreads(1);
  DriverConfig config;
  config.shards = 2;
  config.tenant_quotas["shared"] = TenantQuota{0.0, 0.0, 500};
  SmallService service(std::move(config));
  auto a = service.driver->OpenSession("shared");
  auto b = service.driver->OpenSession("shared");

  EXPECT_EQ(a.IngestBatch(AddBatch(0, 300)), 300u);
  EXPECT_EQ(b.IngestBatch(AddBatch(1, 300)), 0u);  // 300 > remaining 200
  EXPECT_EQ(b.IngestBatch(AddBatch(2, 200)), 200u);
  EXPECT_EQ(a.IngestBatch(AddBatch(3, 1)), 0u);  // cap exhausted for both
  EXPECT_EQ(a.stats().mutations_accepted, 500u);
  EXPECT_EQ(b.stats().mutations_accepted, 500u);  // same shared state
  EXPECT_GE(service.driver->stats().sessions_opened, 2u);
}

TEST(SessionQuota, GreedyTenantCannotStarveOthers) {
  ThreadPool::SetNumThreads(1);
  DriverConfig config;
  config.shards = 4;
  config.tenant_quotas["greedy"] = TenantQuota{0.0, 0.0, 200};
  SmallService service(std::move(config));

  auto greedy = service.driver->OpenSession("greedy");
  auto polite = service.driver->OpenSession("polite");  // default (unlimited) quota
  size_t greedy_accepted = 0;
  size_t polite_accepted = 0;
  for (size_t i = 0; i < 20; ++i) {
    greedy_accepted += greedy.IngestBatch(AddBatch(static_cast<VertexId>(i), 100));
    polite_accepted += polite.IngestBatch(AddBatch(static_cast<VertexId>(i + 100), 100));
  }
  EXPECT_EQ(greedy_accepted, 200u);   // capped
  EXPECT_EQ(polite_accepted, 2000u);  // unaffected by the greedy tenant
}

TEST(SessionQuota, BurstBucketBoundsFrontLoading) {
  ThreadPool::SetNumThreads(1);
  DriverConfig config;
  // Negligible refill rate: the bucket is effectively just its burst
  // capacity for the duration of the test.
  config.tenant_quotas["bursty"] = TenantQuota{1e-6, 256.0, 0};
  SmallService service(std::move(config));
  auto session = service.driver->OpenSession("bursty");

  EXPECT_EQ(session.IngestBatch(AddBatch(0, 300)), 0u);    // over the bucket
  EXPECT_EQ(session.IngestBatch(AddBatch(1, 200)), 200u);  // fits
  EXPECT_EQ(session.IngestBatch(AddBatch(2, 200)), 0u);    // ~56 tokens left
}

TEST(SessionQuota, QuarantinedBatchDoesNotDebitTheAllowance) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir quarantine_dir("shard_quarantine");
  DriverConfig config;
  config.quarantine_dir = quarantine_dir.path();
  config.tenant_quotas["metered"] = TenantQuota{0.0, 0.0, 100};
  SmallService service(std::move(config));
  auto session = service.driver->OpenSession("metered");

  // The content screen runs before the quota gate: a poison batch parks in
  // the dead-letter WAL without consuming allowance.
  MutationBatch poison;
  for (VertexId v = 0; v < 50; ++v) {
    poison.push_back(EdgeMutation::Add(v, v + 1, std::numeric_limits<float>::quiet_NaN()));
  }
  EXPECT_EQ(session.IngestBatch(poison), 0u);
  EXPECT_EQ(service.driver->quarantined_batches(), 1u);
  TenantStats stats = session.stats();
  EXPECT_EQ(stats.mutations_quarantined, 50u);
  EXPECT_EQ(stats.mutations_accepted, 0u);
  EXPECT_EQ(stats.mutations_quota_rejected, 0u);

  // The full 100-mutation allowance is still there.
  EXPECT_EQ(session.IngestBatch(AddBatch(0, 100)), 100u);
  EXPECT_EQ(session.stats().mutations_accepted, 100u);
}

// ----- Sharded vs. unsharded equivalence ------------------------------------

// Pre-generates batches against an evolving shadow graph (same idiom as
// driver_test.cc) so every run sees an identical stream.
std::vector<MutationBatch> MakeBatches(const StreamSplit& split, size_t count, size_t batch_size,
                                       uint64_t seed) {
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, seed);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < count; ++i) {
    MutationBatch batch = stream.NextBatch(shadow, {.size = batch_size, .add_fraction = 0.6});
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Streams the batches through a 4-shard driver from concurrent producer
// sessions, recording the promotion order via the apply observer, then
// replays exactly that admitted stream through an unsharded StreamDriver
// wrapped around `reference`. With one pool thread both engines are
// deterministic, so the snapshots must agree BITWISE — the acceptance
// criterion of the sharded barrier: one BSP-consistent snapshot,
// indistinguishable from the single-lane pipeline on the same stream.
template <StreamingEngine Engine>
void ExpectShardedMatchesUnsharded(Engine& engine, Engine& reference,
                                   const std::vector<MutationBatch>& batches) {
  engine.InitialCompute();
  reference.InitialCompute();

  std::vector<MutationBatch> admitted;  // global apply order
  size_t offered = 0;
  {
    DriverConfig config;
    config.shards = 4;
    config.batch_size = 64;  // small enough that lanes flush mid-stream
    config.flush_interval_seconds = 3600.0;
    config.coalesce = false;
    ShardedDriver<Engine> driver(&engine, config);
    // Runs under the engine mutex, so the recording needs no extra lock.
    driver.set_apply_observer(
        [&](size_t, const MutationBatch& batch) { admitted.push_back(batch); });

    constexpr size_t kProducers = 3;
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        auto session = driver.OpenSession("tenant-" + std::to_string(p));
        for (size_t i = p; i < batches.size(); i += kProducers) {
          EXPECT_EQ(session.IngestBatch(batches[i]), batches[i].size());
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    for (const MutationBatch& batch : batches) {
      offered += batch.size();
    }
    driver.PrepQuery();

    const EngineStats stats = driver.stats();
    EXPECT_EQ(stats.mutations_enqueued, offered);
    EXPECT_EQ(stats.mutations_dropped, 0u);
    EXPECT_EQ(stats.shard_lanes, 4u);
    driver.Stop();
  }
  size_t admitted_total = 0;
  for (const MutationBatch& batch : admitted) {
    admitted_total += batch.size();
  }
  ASSERT_EQ(admitted_total, offered);  // nothing lost, nothing duplicated

  // The unsharded replay: same admitted stream, same flush boundaries.
  StreamDriver<Engine> replay(&reference, {.batch_size = 1u << 20,
                                           .flush_interval_seconds = 3600.0,
                                           .coalesce = false});
  for (const MutationBatch& batch : admitted) {
    ASSERT_EQ(replay.IngestBatch(batch), batch.size());
    replay.Flush();
  }
  const auto& values = replay.values();
  ASSERT_EQ(values.size(), engine.values().size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], engine.values()[v]) << "vertex " << v;
  }
}

TEST(ShardedEquivalence, PageRankBitwiseIdenticalToUnshardedDriver) {
  ThreadPool::SetNumThreads(1);  // deterministic summation order
  EdgeList full = GenerateRmat(1500, 12000, {.seed = 11});
  StreamSplit split = SplitForStreaming(full, 0.5, 12);
  std::vector<MutationBatch> batches = MakeBatches(split, 24, 80, 13);

  MutableGraph g_sharded(split.initial);
  MutableGraph g_ref(split.initial);
  GraphBoltEngine<PageRank> engine(&g_sharded, PageRank{});
  GraphBoltEngine<PageRank> reference(&g_ref, PageRank{});
  ExpectShardedMatchesUnsharded(engine, reference, batches);
}

TEST(ShardedEquivalence, SsspBitwiseIdenticalToUnshardedDriver) {
  ThreadPool::SetNumThreads(1);
  EdgeList full = GenerateRmat(1200, 9000, {.seed = 21, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 22);
  std::vector<MutationBatch> batches = MakeBatches(split, 22, 60, 23);

  MutableGraph g_sharded(split.initial);
  MutableGraph g_ref(split.initial);
  const GraphBoltEngine<Sssp>::Options options{.max_iterations = 128, .run_to_convergence = true};
  GraphBoltEngine<Sssp> engine(&g_sharded, Sssp(0), options);
  GraphBoltEngine<Sssp> reference(&g_ref, Sssp(0), options);
  ExpectShardedMatchesUnsharded(engine, reference, batches);
}

TEST(ShardedEquivalence, KickStarterBitwiseIdenticalToUnshardedDriver) {
  ThreadPool::SetNumThreads(1);
  EdgeList full = GenerateRmat(1000, 8000, {.seed = 31, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 32);
  std::vector<MutationBatch> batches = MakeBatches(split, 20, 50, 33);

  MutableGraph g_sharded(split.initial);
  MutableGraph g_ref(split.initial);
  KickStarterEngine<KsSsspTraits> engine(&g_sharded, KsSsspTraits(0));
  KickStarterEngine<KsSsspTraits> reference(&g_ref, KsSsspTraits(0));
  ExpectShardedMatchesUnsharded(engine, reference, batches);
}

// ----- Shard partition invariants -------------------------------------------

using EdgeTuple = std::tuple<VertexId, VertexId, Weight>;

std::vector<EdgeTuple> SortedEdges(const EdgeList& list) {
  std::vector<EdgeTuple> edges;
  edges.reserve(list.edges().size());
  for (const Edge& e : list.edges()) {
    edges.emplace_back(e.src, e.dst, e.weight);
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

// Streaming an adds-only load into an initially empty engine graph: every
// lane's staging partition holds exactly the edges whose source it owns,
// and their union is exactly the global graph.
TEST(ShardPartitions, LanesPartitionTheEdgeSetBySourceShard) {
  ThreadPool::SetNumThreads(1);
  constexpr size_t kShards = 4;
  EdgeList full = GenerateRmat(800, 6000, {.seed = 71, .assign_random_weights = true});
  MutableGraph graph(EdgeList(full.num_vertices(), {}));
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();

  DriverConfig config;
  config.shards = kShards;
  config.batch_size = 256;
  config.flush_interval_seconds = 3600.0;
  config.coalesce = false;
  ShardedDriver<GraphBoltEngine<PageRank>> driver(&engine, config);
  auto session = driver.OpenSession("loader");
  MutationBatch batch;
  for (const Edge& e : full.edges()) {
    batch.push_back(EdgeMutation::Add(e.src, e.dst, e.weight));
    if (batch.size() == 500) {
      EXPECT_EQ(session.IngestBatch(batch), batch.size());
      batch.clear();
    }
  }
  if (!batch.empty()) {
    EXPECT_EQ(session.IngestBatch(batch), batch.size());
  }
  driver.PrepQuery();
  driver.Stop();

  std::vector<EdgeTuple> unioned;
  for (size_t lane = 0; lane < kShards; ++lane) {
    const EdgeList partition = driver.ShardPartitionEdges(lane);
    for (const Edge& e : partition.edges()) {
      EXPECT_EQ(static_cast<size_t>(e.src) % kShards, lane)
          << "edge (" << e.src << ", " << e.dst << ") staged on the wrong lane";
      unioned.emplace_back(e.src, e.dst, e.weight);
    }
  }
  std::sort(unioned.begin(), unioned.end());
  EXPECT_EQ(unioned, SortedEdges(graph.ToEdgeList()));
}

// ----- FrontierBuilder bitset pool ------------------------------------------

TEST(FrontierBitsetPool, BuildersReuseParkedBitsets) {
  FrontierBitsetPool& pool = FrontierBitsetPool::Instance();
  { FrontierBuilder warm(512); }  // parks one bitset on destruction
  const uint64_t reuses_before = pool.reuses();
  const uint64_t allocations_before = pool.allocations();
  { FrontierBuilder same(512); }
  { FrontierBuilder resized(1024); }  // reuse must survive a universe change
  EXPECT_EQ(pool.reuses(), reuses_before + 2);
  EXPECT_EQ(pool.allocations(), allocations_before);
}

TEST(FrontierBitsetPool, ReusedBuilderStartsClear) {
  {
    FrontierBuilder first(256);
    first.Claim(7);
    first.Claim(200);
  }
  FrontierBuilder second(256);  // from the pool
  EXPECT_FALSE(second.Contains(7));
  EXPECT_FALSE(second.Contains(200));
  EXPECT_TRUE(second.Claim(7));  // first claim wins — must not be pre-claimed
}

// ----- Adaptive splice-vs-rebuild apply -------------------------------------

TEST(AdaptiveApply, ForcedStrategiesProduceIdenticalGraphs) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 81, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 82);
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, 83);
  const MutationBatch batch = stream.NextBatch(shadow, {.size = 800, .add_fraction = 0.5});

  MutableGraph splice(split.initial);
  splice.SetApplyStrategy(MutableGraph::ApplyStrategy::kSplice);
  MutableGraph rebuild(split.initial);
  rebuild.SetApplyStrategy(MutableGraph::ApplyStrategy::kRebuild);
  splice.ApplyBatch(batch);
  rebuild.ApplyBatch(batch);

  EXPECT_EQ(splice.adaptive_rebuilds(), 0u);
  EXPECT_EQ(rebuild.adaptive_rebuilds(), 1u);
  EXPECT_EQ(splice.num_edges(), rebuild.num_edges());
  EXPECT_EQ(SortedEdges(splice.ToEdgeList()), SortedEdges(rebuild.ToEdgeList()));
}

TEST(AdaptiveApply, AutoRebuildsOnlyAboveTheImpactFloor) {
  // Small batch on a small graph: far below kMinRebuildImpact, kAuto must
  // splice.
  EdgeList small = GenerateRmat(400, 3000, {.seed = 91});
  MutableGraph below(small);
  below.ApplyBatch(MutationBatch{EdgeMutation::Add(1, 2, 1.0f)});
  EXPECT_EQ(below.adaptive_rebuilds(), 0u);

  // A batch whose normalized impact clears both the absolute floor and the
  // relative bar (it dwarfs the initial edge set): kAuto must rebuild.
  MutableGraph above(small);
  MutationBatch huge;
  constexpr VertexId kSide = 200;
  huge.reserve(static_cast<size_t>(kSide) * kSide);
  for (VertexId s = 0; s < kSide; ++s) {
    for (VertexId d = 0; d < kSide; ++d) {
      if (s != d) {
        huge.push_back(EdgeMutation::Add(1000 + s, 1000 + d, 1.0f));
      }
    }
  }
  ASSERT_GE(huge.size(), MutableGraph::kMinRebuildImpact);
  above.ApplyBatch(huge);
  EXPECT_EQ(above.adaptive_rebuilds(), 1u);

  // The rebuild path must agree with a forced splice of the same batch.
  MutableGraph check(small);
  check.SetApplyStrategy(MutableGraph::ApplyStrategy::kSplice);
  check.ApplyBatch(huge);
  EXPECT_EQ(SortedEdges(above.ToEdgeList()), SortedEdges(check.ToEdgeList()));
}

}  // namespace
}  // namespace graphbolt
