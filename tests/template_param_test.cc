// Template-parameter coverage: BeliefPropagation, CollaborativeFiltering
// and LabelPropagation are class templates over state count / rank / label
// count — each arity is a distinct instantiation of the whole engine stack,
// so exercise several of them end to end.
#include <gtest/gtest.h>

#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// Shared harness: initial + streamed equivalence against the restart.
template <typename Algo>
void CheckStreamEquivalence(Algo algo, double tolerance, uint64_t seed) {
  EdgeList full = GenerateRmat(400, 3200, {.seed = seed, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, seed + 1);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<Algo> bolt(&g1, algo);
  LigraEngine<Algo> ligra(&g2, algo);
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, seed + 2);
  for (int round = 0; round < 3; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), tolerance) << "round " << round;
  }
}

TEST(BeliefPropagationArity, TwoStates) {
  CheckStreamEquivalence(BeliefPropagation<2>{}, 1e-6, 240);
}

TEST(BeliefPropagationArity, FourStates) {
  CheckStreamEquivalence(BeliefPropagation<4>{}, 1e-6, 241);
}

TEST(BeliefPropagationArity, SixStates) {
  CheckStreamEquivalence(BeliefPropagation<6>{}, 1e-6, 242);
}

TEST(CollaborativeFilteringRank, RankTwo) {
  CheckStreamEquivalence(CollaborativeFiltering<2>{}, 1e-5, 243);
}

TEST(CollaborativeFilteringRank, RankSix) {
  CheckStreamEquivalence(CollaborativeFiltering<6>{}, 1e-5, 244);
}

TEST(CollaborativeFilteringRank, RelaxedRankFour) {
  CheckStreamEquivalence(CollaborativeFiltering<4>(0.05, 17, 1e-9, 0.3), 1e-5, 245);
}

TEST(LabelPropagationArity, FourLabels) {
  CheckStreamEquivalence(LabelPropagation<4>(400, 0.1, 246), 1e-7, 247);
}

TEST(LabelPropagationArity, EightLabels) {
  CheckStreamEquivalence(LabelPropagation<8>(400, 0.1, 248), 1e-7, 249);
}

TEST(PageRankDamping, LowAndHigh) {
  CheckStreamEquivalence(PageRank(0.5), 1e-8, 250);
  CheckStreamEquivalence(PageRank(0.95), 1e-7, 251);
}

}  // namespace
}  // namespace graphbolt
