// Unit tests for the synthetic graph generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"

namespace graphbolt {
namespace {

TEST(Rmat, ProducesRequestedScale) {
  EdgeList list = GenerateRmat(1000, 8000, {.seed = 1});
  EXPECT_EQ(list.num_vertices(), 1000u);
  // Deduplication discards some samples; expect at least 85% of the target.
  EXPECT_GE(list.num_edges(), 6800u);
  EXPECT_LE(list.num_edges(), 8000u);
}

TEST(Rmat, DeterministicForSeed) {
  EdgeList a = GenerateRmat(500, 2000, {.seed = 9});
  EdgeList b = GenerateRmat(500, 2000, {.seed = 9});
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
  }
}

TEST(Rmat, NoSelfLoopsOrDuplicates) {
  EdgeList list = GenerateRmat(300, 2000, {.seed = 5});
  for (size_t i = 0; i < list.num_edges(); ++i) {
    EXPECT_NE(list.edges()[i].src, list.edges()[i].dst);
    if (i > 0) {
      const Edge& prev = list.edges()[i - 1];
      const Edge& cur = list.edges()[i];
      EXPECT_TRUE(prev.src != cur.src || prev.dst != cur.dst);
    }
  }
}

TEST(Rmat, SkewedDegreeDistribution) {
  // R-MAT's defining property: a heavy-tailed degree distribution. The top
  // 1% of vertices must own far more than 1% of the edges.
  EdgeList list = GenerateRmat(2000, 20000, {.seed = 2});
  MutableGraph graph(list);
  std::vector<size_t> degrees;
  degrees.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    degrees.push_back(graph.OutDegree(v));
  }
  std::sort(degrees.rbegin(), degrees.rend());
  size_t top = 0;
  for (size_t i = 0; i < degrees.size() / 100; ++i) {
    top += degrees[i];
  }
  EXPECT_GT(top, graph.num_edges() / 10);  // top 1% holds >10% of edges
}

TEST(Rmat, RandomWeightsInRange) {
  EdgeList list = GenerateRmat(300, 1500, {.seed = 3, .assign_random_weights = true});
  for (const Edge& e : list.edges()) {
    EXPECT_GT(e.weight, 0.0f);
    EXPECT_LE(e.weight, 1.0f);
  }
}

TEST(ErdosRenyi, ExactEdgeCount) {
  EdgeList list = GenerateErdosRenyi(100, 500, 4);
  EXPECT_EQ(list.num_edges(), 500u);
  EXPECT_EQ(list.num_vertices(), 100u);
}

TEST(ErdosRenyi, Deterministic) {
  EdgeList a = GenerateErdosRenyi(50, 100, 6);
  EdgeList b = GenerateErdosRenyi(50, 100, 6);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.num_edges(); ++i) {
    EXPECT_EQ(a.edges()[i].src, b.edges()[i].src);
    EXPECT_EQ(a.edges()[i].dst, b.edges()[i].dst);
  }
}

TEST(Cycle, Structure) {
  EdgeList list = GenerateCycle(5);
  EXPECT_EQ(list.num_edges(), 5u);
  MutableGraph graph(list);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(graph.OutDegree(v), 1u);
    EXPECT_EQ(graph.InDegree(v), 1u);
  }
  EXPECT_TRUE(graph.HasEdge(4, 0));
}

TEST(Chain, Structure) {
  EdgeList list = GenerateChain(4);
  EXPECT_EQ(list.num_edges(), 3u);
  MutableGraph graph(list);
  EXPECT_EQ(graph.OutDegree(3), 0u);
  EXPECT_EQ(graph.InDegree(0), 0u);
}

TEST(Star, Structure) {
  EdgeList list = GenerateStar(6);
  EXPECT_EQ(list.num_edges(), 10u);  // 2 * (n - 1)
  MutableGraph graph(list);
  EXPECT_EQ(graph.OutDegree(0), 5u);
  EXPECT_EQ(graph.InDegree(0), 5u);
  EXPECT_EQ(graph.OutDegree(3), 1u);
}

TEST(Complete, Structure) {
  EdgeList list = GenerateComplete(4);
  EXPECT_EQ(list.num_edges(), 12u);  // n * (n - 1)
  MutableGraph graph(list);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(graph.OutDegree(v), 3u);
    EXPECT_EQ(graph.InDegree(v), 3u);
  }
}

TEST(Grid, Structure) {
  EdgeList list = GenerateGrid(3, 4);
  EXPECT_EQ(list.num_vertices(), 12u);
  // (rows * (cols-1)) right edges + ((rows-1) * cols) down edges.
  EXPECT_EQ(list.num_edges(), 3u * 3 + 2u * 4);
  MutableGraph graph(list);
  EXPECT_EQ(graph.OutDegree(0), 2u);   // corner
  EXPECT_EQ(graph.OutDegree(11), 0u);  // opposite corner
}

TEST(Generators, SingleVertexEdgeCases) {
  EXPECT_EQ(GenerateChain(1).num_edges(), 0u);
  EXPECT_EQ(GenerateCycle(1).num_edges(), 0u);
  EXPECT_EQ(GenerateStar(1).num_edges(), 0u);
}

}  // namespace
}  // namespace graphbolt
