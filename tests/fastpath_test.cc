// Single-update fast-path tier (src/driver/fast_path.h): per-engine
// classification matrices, a randomized soundness oracle (a safe verdict
// must mean the batched apply is a bitwise no-op on engine state), driver
// equivalence between IngestFast and batched replay of the identical
// stream, recovery through fast-path splices under fault injection
// (compiled with GRAPHBOLT_FAULT_INJECTION=1), and a mixed fast/batched
// torture on the 4-lane sharded driver. `ctest -L "concurrency|fault|fuzz"`
// runs it; the sanitizer sweep (tools/run_sanitized_tests.sh) runs it under
// ASan and TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/core/streaming_engine.h"
#include "src/driver/fast_path.h"
#include "src/driver/stream_driver.h"
#include "src/engine/ligra_engine.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/kickstarter/kickstarter_engine.h"
#include "src/parallel/thread_pool.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// The concept is the contract; drift must fail to compile.
static_assert(FastPathEngine<GraphBoltEngine<PageRank>>);
static_assert(FastPathEngine<GraphBoltEngine<Sssp>>);
static_assert(FastPathEngine<KickStarterEngine<KsSsspTraits>>);
static_assert(!FastPathEngine<LigraEngine<PageRank>>);

// Bitwise equality over value arrays — the fast path's contract is stated
// in bits, not tolerances (recovery replay must be exact).
template <typename Value>
bool SameValueBits(const std::vector<Value>& a, const std::vector<Value>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(Value)) == 0);
}

// A single-mutation stream interleaving generated updates with guaranteed
// graph no-ops (self-loops normalize to nothing for every algorithm), so
// each run deterministically exercises both the safe splice and the
// escalation route.
std::vector<EdgeMutation> MakeSingleMutationStream(const StreamSplit& split, size_t count,
                                                   uint64_t seed) {
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, seed);
  std::vector<EdgeMutation> mutations;
  for (size_t i = 0; i < count; ++i) {
    if (i % 5 == 4) {
      const auto v = static_cast<VertexId>(i % shadow.num_vertices());
      mutations.push_back(EdgeMutation::Add(v, v));  // self-loop: always a no-op
      continue;
    }
    MutationBatch one = stream.NextBatch(shadow, {.size = 1, .add_fraction = 0.6});
    shadow.ApplyBatch(one);
    for (const EdgeMutation& m : one) {
      mutations.push_back(m);
    }
  }
  return mutations;
}

// ----- Classification matrices ---------------------------------------------

// A small weighted DAG-with-one-back-edge where every verdict is derivable
// by hand. SSSP from 0: d0=0, d1=1, d2=2 (via 1->2), d3=3, d4=inf.
EdgeList SmallWeightedGraph() {
  EdgeList list;
  list.set_num_vertices(5);
  list.Add(0, 1, 1.0f);
  list.Add(1, 2, 1.0f);
  list.Add(0, 2, 5.0f);   // dominated by 0->1->2 in the final state
  list.Add(2, 3, 1.0f);
  list.Add(3, 2, 50.0f);  // never attains the aggregate at 2, at any level
  return list;
}

TEST(FastPathClassify, KickStarterMatrix) {
  MutableGraph graph(SmallWeightedGraph());
  KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));

  // Before InitialCompute nothing is provable.
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Add(0, 1, 1.0f)).safe);

  engine.InitialCompute();
  ASSERT_EQ(engine.values()[2], 2.0);
  ASSERT_EQ(engine.parents()[2], 1u);  // the tree routes 2 through 1

  // Graph no-ops are safe for every algorithm.
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Add(0, 1, 1.0f)).safe);   // duplicate
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Delete(0, 4)).safe);      // absent
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Add(3, 3, 1.0f)).safe);   // self-loop

  // Additions: safe iff the relaxation cannot beat the target's value.
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Add(2, 0, 10.0f)).safe);  // 12 > 0
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Add(0, 3, 0.5f)).safe);  // 0.5 < 3
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Add(0, 4, 1.0f)).safe);  // reaches 4

  // Deletions: safe iff the edge is not in the dependence tree.
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Delete(0, 1)).safe);  // tree edge
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Delete(0, 2)).safe);   // parent of 2 is 1

  // Growing the vertex set is never a fast splice.
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Add(0, 99, 1.0f)).safe);

  // ApplyFastSafe re-validates: unsafe mutations are refused untouched.
  const std::vector<double> before = engine.values();
  EXPECT_FALSE(engine.ApplyFastSafe(EdgeMutation::Add(0, 3, 0.5f)));
  EXPECT_FALSE(graph.HasEdge(0, 3));
  EXPECT_TRUE(engine.ApplyFastSafe(EdgeMutation::Add(2, 0, 10.0f)));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_TRUE(SameValueBits(before, engine.values()));
}

TEST(FastPathClassify, GraphBoltSsspMatrix) {
  MutableGraph graph(SmallWeightedGraph());
  GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                               {.max_iterations = 128, .run_to_convergence = true});

  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Add(0, 1, 1.0f)).safe);  // not computed

  engine.InitialCompute();
  ASSERT_EQ(engine.values()[3], 3.0);

  // Graph no-ops.
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Add(0, 1, 1.0f)).safe);
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Delete(0, 4)).safe);

  // A heavy addition that cannot relax the target at any tracked level.
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Add(1, 3, 10.0f)).safe);
  // An improving addition must escalate.
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Add(0, 3, 0.5f)).safe);

  // 0->2 attains the level-1 aggregate at 2 (before 1's distance exists),
  // so deleting it rewrites the store even though the final value stands.
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Delete(0, 2)).safe);
  // 3->2 is strictly dominated at every level: deletion is a pure splice.
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Delete(3, 2)).safe);

  const std::vector<double> before = engine.values();
  EXPECT_TRUE(engine.ApplyFastSafe(EdgeMutation::Delete(3, 2)));
  EXPECT_FALSE(graph.HasEdge(3, 2));
  EXPECT_TRUE(SameValueBits(before, engine.values()));
}

TEST(FastPathClassify, PageRankOnlyGraphNoopsAreSafe) {
  MutableGraph graph(PaperFigure2aGraph());
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();

  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Add(0, 1)).safe);     // duplicate
  EXPECT_TRUE(engine.ClassifyFast(EdgeMutation::Delete(1, 4)).safe);  // absent
  // Real mutations shift the endpoint's degree context, which moves its
  // contribution along every incident edge — never provable.
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Add(0, 4)).safe);
  EXPECT_FALSE(engine.ClassifyFast(EdgeMutation::Delete(3, 4)).safe);
}

// ----- Randomized soundness oracle -----------------------------------------

// The definition of "safe", checked directly: whenever ClassifyFast says
// safe, running the mutation through the full batched ApplyMutations path
// must leave the computed values bitwise unchanged. Returns (safe, total)
// so callers can require the sweep was not vacuous.
template <typename Engine>
std::pair<uint64_t, uint64_t> SweepOracle(Engine& engine,
                                          const std::vector<EdgeMutation>& mutations) {
  uint64_t safe = 0;
  for (const EdgeMutation& m : mutations) {
    const bool verdict = engine.ClassifyFast(m).safe;
    const auto before = engine.values();
    engine.ApplyMutations(MutationBatch{m});
    if (verdict) {
      ++safe;
      EXPECT_TRUE(SameValueBits(before, engine.values()))
          << "safe verdict but batched apply moved values: kind="
          << static_cast<int>(m.kind) << " " << m.src << "->" << m.dst;
    }
  }
  return {safe, mutations.size()};
}

TEST(FastPathOracle, SafeVerdictImpliesBitwiseNoopAcrossSeeds) {
  ThreadPool::SetNumThreads(1);
  uint64_t ks_safe = 0;
  uint64_t gb_safe = 0;
  for (const uint64_t seed : FuzzSeeds()) {
    EdgeList full = GenerateRmat(600, 5000, {.seed = seed, .assign_random_weights = true});
    StreamSplit split = SplitForStreaming(full, 0.5, seed + 1);
    const std::vector<EdgeMutation> mutations =
        MakeSingleMutationStream(split, 120, seed + 2);
    {
      MutableGraph graph(split.initial);
      KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));
      engine.InitialCompute();
      ks_safe += SweepOracle(engine, mutations).first;
    }
    {
      MutableGraph graph(split.initial);
      GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                                   {.max_iterations = 128, .run_to_convergence = true});
      engine.InitialCompute();
      gb_safe += SweepOracle(engine, mutations).first;
    }
  }
  // The interleaved self-loops alone guarantee both sweeps see safes.
  EXPECT_GT(ks_safe, 0u);
  EXPECT_GT(gb_safe, 0u);
}

// ----- Driver equivalence ---------------------------------------------------

// Streams every mutation through IngestFast (safe ones splice, unsafe ones
// escalate into the gutter and are flushed as a 1-mutation batch) and
// requires the values to stay bitwise identical to a reference engine that
// applies every mutation through the batched path. One pool thread keeps
// both paths deterministic, so the comparison is exact.
template <StreamingEngine Engine>
void ExpectFastPathMatchesBatchedReplay(Engine& engine, Engine& reference,
                                        const std::vector<EdgeMutation>& mutations) {
  engine.InitialCompute();
  reference.InitialCompute();
  StreamDriver<Engine> driver(&engine, {.batch_size = 1u << 20,
                                        .flush_interval_seconds = 3600.0,
                                        .coalesce = false,
                                        .fast_path = true});
  size_t step = 0;
  for (const EdgeMutation& m : mutations) {
    ASSERT_TRUE(driver.IngestFast(m));
    driver.Flush();  // an escalated mutation becomes its own micro-batch
    reference.ApplyMutations(MutationBatch{m});
    if (++step % 16 == 0) {
      driver.PrepQuery();
      ASSERT_TRUE(SameValueBits(engine.values(), reference.values()))
          << "diverged at mutation " << step;
    }
  }
  driver.PrepQuery();
  ASSERT_TRUE(SameValueBits(engine.values(), reference.values()));

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.fastpath_safe_applied + stats.fastpath_unsafe_escalated, mutations.size());
  EXPECT_GT(stats.fastpath_safe_applied, 0u);       // the self-loops at minimum
  EXPECT_GT(stats.fastpath_unsafe_escalated, 0u);   // random stream always has some
  EXPECT_EQ(stats.fastpath_epoch_flips, stats.fastpath_safe_applied);
  EXPECT_EQ(stats.mutations_enqueued, mutations.size());
  EXPECT_EQ(stats.mutations_dropped, 0u);
}

TEST(FastPathDriver, KickStarterBitwiseEqualsBatchedReplayAcrossSeeds) {
  ThreadPool::SetNumThreads(1);
  for (const uint64_t seed : FuzzSeeds()) {
    EdgeList full = GenerateRmat(700, 5500, {.seed = seed + 10, .assign_random_weights = true});
    StreamSplit split = SplitForStreaming(full, 0.5, seed + 11);
    const std::vector<EdgeMutation> mutations =
        MakeSingleMutationStream(split, 150, seed + 12);
    MutableGraph g_driver(split.initial);
    MutableGraph g_ref(split.initial);
    KickStarterEngine<KsSsspTraits> engine(&g_driver, KsSsspTraits(0));
    KickStarterEngine<KsSsspTraits> reference(&g_ref, KsSsspTraits(0));
    ExpectFastPathMatchesBatchedReplay(engine, reference, mutations);
  }
}

TEST(FastPathDriver, SsspBitwiseEqualsBatchedReplayAcrossSeeds) {
  ThreadPool::SetNumThreads(1);
  for (const uint64_t seed : FuzzSeeds()) {
    EdgeList full = GenerateRmat(500, 4000, {.seed = seed + 20, .assign_random_weights = true});
    StreamSplit split = SplitForStreaming(full, 0.5, seed + 21);
    const std::vector<EdgeMutation> mutations =
        MakeSingleMutationStream(split, 80, seed + 22);
    MutableGraph g_driver(split.initial);
    MutableGraph g_ref(split.initial);
    const GraphBoltEngine<Sssp>::Options options{.max_iterations = 128,
                                                 .run_to_convergence = true};
    GraphBoltEngine<Sssp> engine(&g_driver, Sssp(0), options);
    GraphBoltEngine<Sssp> reference(&g_ref, Sssp(0), options);
    ExpectFastPathMatchesBatchedReplay(engine, reference, mutations);
  }
}

TEST(FastPathDriver, DisabledOptionFallsBackToBatched) {
  MutableGraph graph(SmallWeightedGraph());
  KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));
  engine.InitialCompute();
  StreamDriver<KickStarterEngine<KsSsspTraits>> driver(
      &engine, {.batch_size = 1u << 20, .flush_interval_seconds = 3600.0, .fast_path = false});
  // A provably safe mutation still lands in the gutter when the option is
  // off: IngestFast degrades to Ingest exactly.
  ASSERT_TRUE(driver.IngestFast(EdgeMutation::Add(2, 0, 10.0f)));
  EXPECT_EQ(driver.pending_mutations(), 1u);
  EXPECT_EQ(driver.stats().fastpath_safe_applied, 0u);
  EXPECT_EQ(driver.stats().fastpath_unsafe_escalated, 0u);
  driver.PrepQuery();
  EXPECT_TRUE(graph.HasEdge(2, 0));
}

// ----- Recovery through fast-path splices -----------------------------------

// Fast-path safe applies must be journaled exactly like batches: after a
// cold restart, checkpoint + WAL replay (which drives the *batched* path)
// must land bitwise on the state the fast path left behind. A WAL-append
// fault is armed so the lost-append → forced-checkpoint branch of the fast
// path is exercised too.
TEST(FastPathRecovery, ColdRestartBitwiseThroughFastPath) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir tmp("fastpath_recovery");
  EdgeList full = GenerateRmat(800, 6500, {.seed = 91, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 92);
  const std::vector<EdgeMutation> mutations = MakeSingleMutationStream(split, 200, 93);

  std::vector<double> live_values;
  std::vector<VertexId> live_parents;
  uint64_t live_safe = 0;
  {
    MutableGraph graph(split.initial);
    KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));
    engine.InitialCompute();
    FaultInjector injector(/*seed=*/0xfa57);
    Checkpointer<KickStarterEngine<KsSsspTraits>> checkpointer(
        &engine, &graph, {.directory = tmp.path(), .cadence_batches = 1u << 20}, &injector);
    StreamDriver<KickStarterEngine<KsSsspTraits>> driver(
        &engine, {.batch_size = 1u << 20,
                  .flush_interval_seconds = 3600.0,
                  .coalesce = false,
                  .checkpointer = &checkpointer,
                  .fault_injector = &injector,
                  .fast_path = true});
    ASSERT_TRUE(driver.CheckpointNow());  // baseline
    injector.ArmOnce(FaultSite::kWalAppend, 5, /*burst=*/3);  // 5th append loses all retries
    for (size_t i = 0; i < mutations.size(); ++i) {
      ASSERT_TRUE(driver.IngestFast(mutations[i]));
      if (i % 25 == 24) {
        driver.Flush();
      }
    }
    driver.PrepQuery();
    EXPECT_GE(injector.fired(FaultSite::kWalAppend), 1u);
    live_safe = driver.stats().fastpath_safe_applied;
    EXPECT_GT(live_safe, 0u);
    live_values = engine.values();
    live_parents = engine.parents();
  }

  // Second "process": nothing in memory, everything from disk.
  MutableGraph graph;
  KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));
  Checkpointer<KickStarterEngine<KsSsspTraits>> checkpointer(
      &engine, &graph, {.directory = tmp.path(), .cadence_batches = 1u << 20});
  StreamDriver<KickStarterEngine<KsSsspTraits>> driver(
      &engine, {.batch_size = 1u << 20,
                .flush_interval_seconds = 3600.0,
                .coalesce = false,
                .checkpointer = &checkpointer,
                .fast_path = true});
  ASSERT_TRUE(driver.Recover());
  ASSERT_EQ(engine.values().size(), live_values.size());
  EXPECT_TRUE(SameValueBits(live_values, engine.values()));
  for (size_t v = 0; v < live_parents.size(); ++v) {
    ASSERT_EQ(engine.parents()[v], live_parents[v]) << "parent of " << v;
  }
}

// ----- Sharded torture -------------------------------------------------------

// Four producers hammer a 4-lane sharded driver, each alternating the fast
// path with batched ingestion, while the main thread takes query barriers.
// The stream is addition-only, so the SSSP fixpoint is order-independent
// and the drained state must equal a from-scratch run on the final graph.
TEST(FastPathSharded, MixedFastBatchedTortureOnFourLanes) {
  ThreadPool::SetNumThreads(2);
  EdgeList full = GenerateRmat(1000, 12000, {.seed = 95, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 96);

  MutableGraph graph(split.initial);
  KickStarterEngine<KsSsspTraits> engine(&graph, KsSsspTraits(0));
  engine.InitialCompute();

  DriverConfig config;
  config.shards = 4;
  config.batch_size = 64;
  config.flush_interval_seconds = 0.002;
  config.fast_path = true;
  ShardedDriver<KickStarterEngine<KsSsspTraits>> driver(&engine, config);

  constexpr size_t kProducers = 4;
  std::vector<std::vector<Edge>> slices(kProducers);
  for (size_t i = 0; i < split.held_back.size(); ++i) {
    slices[i % kProducers].push_back(split.held_back[i]);
  }
  std::atomic<uint64_t> fast_calls{0};
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      auto session = driver.OpenSession("tenant-" + std::to_string(p));
      for (size_t i = 0; i < slices[p].size(); ++i) {
        const Edge& e = slices[p][i];
        const EdgeMutation m = EdgeMutation::Add(e.src, e.dst, e.weight);
        if (i % 2 == 0) {
          fast_calls.fetch_add(1, std::memory_order_relaxed);
          ASSERT_TRUE(session.IngestFast(m));
        } else {
          ASSERT_TRUE(session.Ingest(m));
        }
      }
    });
  }
  for (int q = 0; q < 3; ++q) {
    std::vector<double> snapshot = driver.QuerySnapshot();
    ASSERT_EQ(snapshot.size(), graph.num_vertices());
  }
  for (std::thread& t : producers) {
    t.join();
  }
  driver.PrepQuery();

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.mutations_enqueued, split.held_back.size());
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_EQ(stats.fastpath_epoch_flips, stats.fastpath_safe_applied);
  // Every IngestFast call resolved one way or the other.
  EXPECT_EQ(stats.fastpath_safe_applied + stats.fastpath_unsafe_escalated, fast_calls.load());

  // Addition-only: the shortest-distance fixpoint is unique, so the
  // incremental state must equal a from-scratch run on the final graph.
  MutableGraph final_graph(full);
  KickStarterEngine<KsSsspTraits> fresh(&final_graph, KsSsspTraits(0));
  fresh.InitialCompute();
  ASSERT_EQ(graph.num_edges(), final_graph.num_edges());
  ASSERT_EQ(engine.values().size(), fresh.values().size());
  for (size_t v = 0; v < engine.values().size(); ++v) {
    ASSERT_EQ(engine.values()[v], fresh.values()[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace graphbolt
