// Scheduler-level tests for the work-stealing TaskArena: the Chase-Lev
// deque protocol, fork-join TaskGroup semantics, nested parallelism, and
// the SetNumThreads resize contract the old ThreadPool got wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/parallel/parallel_for.h"
#include "src/parallel/task_arena.h"
#include "src/parallel/thread_pool.h"

namespace graphbolt {
namespace {

using arena_internal::Task;
using arena_internal::WorkStealingDeque;

struct CountingTask : Task {
  explicit CountingTask(std::atomic<int>* c) : counter(c) {
    run = [](Task* t) { static_cast<CountingTask*>(t)->counter->fetch_add(1); };
  }
  std::atomic<int>* counter;
};

TEST(WorkStealingDeque, OwnerPopIsLifo) {
  WorkStealingDeque deque;
  std::atomic<int> counter{0};
  CountingTask a(&counter), b(&counter), c(&counter);
  deque.Push(&a);
  deque.Push(&b);
  deque.Push(&c);
  EXPECT_EQ(deque.Pop(), &c);
  EXPECT_EQ(deque.Pop(), &b);
  EXPECT_EQ(deque.Pop(), &a);
  EXPECT_EQ(deque.Pop(), nullptr);
  EXPECT_TRUE(deque.Empty());
}

TEST(WorkStealingDeque, StealTakesOldestFirst) {
  WorkStealingDeque deque;
  std::atomic<int> counter{0};
  CountingTask a(&counter), b(&counter);
  deque.Push(&a);
  deque.Push(&b);
  EXPECT_EQ(deque.Steal(), &a);  // thieves take the top (FIFO end)
  EXPECT_EQ(deque.Pop(), &b);    // owner keeps the bottom (LIFO end)
  EXPECT_EQ(deque.Steal(), nullptr);
}

TEST(WorkStealingDeque, GrowsPastInitialCapacity) {
  WorkStealingDeque deque;
  std::atomic<int> counter{0};
  const int n = 1000;  // > kInitialCapacity (256): forces two Grow calls
  std::vector<CountingTask> tasks(n, CountingTask(&counter));
  for (auto& task : tasks) {
    deque.Push(&task);
  }
  int popped = 0;
  while (deque.Pop() != nullptr) {
    ++popped;
  }
  EXPECT_EQ(popped, n);
}

TEST(WorkStealingDeque, ConcurrentStealersEachTaskTakenOnce) {
  // One owner pushes and pops while four thieves hammer Steal: every task
  // must be taken exactly once across all six exit paths. Run under TSan
  // (ctest -L parallel in build-tsan) this doubles as the deque's memory-
  // model check.
  WorkStealingDeque deque;
  constexpr int kTasks = 20000;
  std::vector<std::atomic<uint8_t>> taken(kTasks);
  struct IndexTask : Task {
    std::atomic<uint8_t>* cell = nullptr;
  };
  std::vector<IndexTask> tasks(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks[i].cell = &taken[i];
  }
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};
  auto consume = [&consumed](Task* task) {
    if (task != nullptr) {
      static_cast<IndexTask*>(task)->cell->fetch_add(1);
      consumed.fetch_add(1);
    }
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < 4; ++t) {
    thieves.emplace_back([&] {
      while (!done.load()) {
        consume(deque.Steal());
      }
      consume(deque.Steal());  // final sweep
    });
  }
  for (int i = 0; i < kTasks; ++i) {
    deque.Push(&tasks[i]);
    if ((i & 7) == 0) {
      consume(deque.Pop());  // owner competes for the bottom
    }
  }
  while (consumed.load() < kTasks) {
    consume(deque.Pop());
    if (deque.Empty() && consumed.load() < kTasks) {
      std::this_thread::yield();  // thieves hold the rest mid-CAS
    }
  }
  done.store(true);
  for (auto& thief : thieves) {
    thief.join();
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(taken[i].load(), 1u) << "task " << i;
  }
}

TEST(TaskGroup, ForkJoinRunsEveryClosure) {
  ThreadPool::SetNumThreads(4);
  std::atomic<int> ran{0};
  {
    TaskGroup group;
    for (int i = 0; i < 100; ++i) {
      group.Run([&ran] { ran.fetch_add(1); });
    }
    group.Wait();
    EXPECT_EQ(ran.load(), 100);
  }
  ThreadPool::SetNumThreads(1);
}

TEST(TaskGroup, SerialArenaRunsInline) {
  ThreadPool::SetNumThreads(1);
  const ArenaCounters before = TaskArena::Instance().counters();
  int ran = 0;  // non-atomic: inline execution means no concurrency
  TaskGroup group;
  group.Run([&ran] { ++ran; });
  group.Wait();
  EXPECT_EQ(ran, 1);
  const ArenaCounters after = TaskArena::Instance().counters();
  EXPECT_GT(after.inline_runs, before.inline_runs);
}

TEST(TaskGroup, NestedGroupsJoinInnerBeforeOuter) {
  ThreadPool::SetNumThreads(4);
  std::atomic<int> inner_total{0};
  std::atomic<int> outer_done{0};
  {
    TaskGroup outer;
    for (int i = 0; i < 8; ++i) {
      outer.Run([&] {
        TaskGroup inner;
        for (int j = 0; j < 8; ++j) {
          inner.Run([&inner_total] { inner_total.fetch_add(1); });
        }
        inner.Wait();
        // Inner join complete: all 8 of *this* group's closures ran.
        outer_done.fetch_add(1);
      });
    }
    outer.Wait();
  }
  EXPECT_EQ(inner_total.load(), 64);
  EXPECT_EQ(outer_done.load(), 8);
  ThreadPool::SetNumThreads(1);
}

TEST(TaskArena, InParallelRegionReflectsTaskContext) {
  ThreadPool::SetNumThreads(2);
  EXPECT_FALSE(TaskArena::InParallelRegion());
  std::atomic<bool> saw_region{false};
  ParallelFor(0, 32, [&saw_region](size_t) {
    if (TaskArena::InParallelRegion()) {
      saw_region.store(true);
    }
  }, /*grain=*/1);
  EXPECT_TRUE(saw_region.load());
  EXPECT_FALSE(TaskArena::InParallelRegion());
  ThreadPool::SetNumThreads(1);
}

TEST(TaskArena, SetNumThreadsWhileLoopsRunOnOtherThreads) {
  // The old ThreadPool's rebuild race: SetNumThreads deleted the pool while
  // another thread's loop was using it. The arena resizes behind the root-
  // region guard, so concurrent loops and resizes interleave safely.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> loops{0};
  std::vector<std::thread> runners;
  for (int t = 0; t < 2; ++t) {
    runners.emplace_back([&] {
      while (!stop.load()) {
        std::atomic<int> count{0};
        ParallelFor(0, 256, [&count](size_t) { count.fetch_add(1); }, /*grain=*/8);
        ASSERT_EQ(count.load(), 256);
        loops.fetch_add(1);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    ThreadPool::SetNumThreads(1 + round % 4);
  }
  stop.store(true);
  for (auto& runner : runners) {
    runner.join();
  }
  EXPECT_GT(loops.load(), 0u);
  ThreadPool::SetNumThreads(1);
}

// ----- Priority lane (async delta rounds; see INTERNALS §14) -----------------

TEST(PriorityLane, RunPriorityExecutesAllAndCounts) {
  ThreadPool::SetNumThreads(4);
  const ArenaCounters before = TaskArena::Instance().counters();
  std::atomic<int> ran{0};
  {
    TaskGroup group;
    for (int i = 0; i < 64; ++i) {
      group.RunPriority(static_cast<double>(i % 7), [&ran] { ran.fetch_add(1); });
    }
    group.Wait();
  }
  EXPECT_EQ(ran.load(), 64);
  const ArenaCounters after = TaskArena::Instance().counters();
  EXPECT_EQ(after.tasks_priority - before.tasks_priority, 64u);
  ThreadPool::SetNumThreads(1);
}

TEST(PriorityLane, SerialArenaRunsInline) {
  ThreadPool::SetNumThreads(1);
  const ArenaCounters before = TaskArena::Instance().counters();
  int ran = 0;  // non-atomic: inline execution means no concurrency
  TaskGroup group;
  group.RunPriority(3.0, [&ran] { ++ran; });
  group.Wait();
  EXPECT_EQ(ran, 1);
  const ArenaCounters after = TaskArena::Instance().counters();
  EXPECT_EQ(after.tasks_priority, before.tasks_priority);
  EXPECT_GT(after.inline_runs, before.inline_runs);
}

// Deterministic drain-order check. Every persistent worker is first parked
// inside a spinning blocker, so when the group waiter (the main thread)
// starts popping, it is the *only* drainer: the lane's max-heap contract
// says it must observe the priorities in strictly descending order. The
// lowest-priority task — executed last — releases the blockers so Wait()
// can join the group.
TEST(PriorityLane, GroupWaiterDrainsHighestPriorityFirst) {
  ThreadPool::SetNumThreads(4);
  const size_t workers = TaskArena::Instance().num_threads() - 1;
  ASSERT_GE(workers, 1u);
  std::atomic<size_t> started{0};
  std::atomic<bool> release{false};
  std::vector<double> order;
  std::mutex order_mu;
  const std::vector<double> priorities = {1.0, 9.0, 3.0, 7.0, 5.0, 2.0, 8.0};
  {
    TaskGroup group;  // root region: attaches this thread to a slot
    for (size_t w = 0; w < workers; ++w) {
      group.Run([&] {
        started.fetch_add(1);
        while (!release.load()) {
          std::this_thread::yield();
        }
      });
    }
    // One blocker per persistent worker: when all have started, every
    // worker is parked and this thread's deque is empty.
    for (int i = 0; i < 100000 && started.load() < workers; ++i) {
      std::this_thread::yield();
    }
    ASSERT_EQ(started.load(), workers);
    for (const double p : priorities) {
      group.RunPriority(p, [&, p] {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(p);
        if (order.size() == priorities.size()) {
          release.store(true);
        }
      });
    }
    group.Wait();
  }
  ASSERT_EQ(order.size(), priorities.size());
  std::vector<double> want = priorities;
  std::sort(want.begin(), want.end(), std::greater<double>());
  EXPECT_EQ(order, want);
  ThreadPool::SetNumThreads(1);
}

TEST(TaskArena, CountersAdvanceWithForkedWork) {
  ThreadPool::SetNumThreads(4);
  const ArenaCounters before = TaskArena::Instance().counters();
  std::atomic<uint64_t> sum{0};
  ParallelFor(0, 4096, [&sum](size_t i) { sum.fetch_add(i); }, /*grain=*/1);
  const ArenaCounters after = TaskArena::Instance().counters();
  EXPECT_EQ(sum.load(), 4095ull * 4096 / 2);
  EXPECT_GT(after.tasks_forked, before.tasks_forked);
  ThreadPool::SetNumThreads(1);
}

}  // namespace
}  // namespace graphbolt
