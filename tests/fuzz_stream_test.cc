// Randomized long-stream differential fuzzing: many seeds × many batches ×
// adversarial batch compositions, always checking the one invariant that
// defines GraphBolt — refined results equal a from-scratch run on the final
// snapshot.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "src/algorithms/coem.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// Adversarial batch generator: beyond UpdateStream's realistic mixes, this
// produces duplicate mutations, add/delete flip-flops on the same endpoints,
// self-loops, mutations on brand-new vertices, and weight updates.
MutationBatch AdversarialBatch(const MutableGraph& graph, Rng& rng, size_t size) {
  MutationBatch batch;
  const VertexId n = graph.num_vertices();
  for (size_t i = 0; i < size; ++i) {
    const double roll = rng.NextDouble();
    const auto src = static_cast<VertexId>(rng.NextBounded(n));
    const auto dst = static_cast<VertexId>(rng.NextBounded(n));
    if (roll < 0.30) {
      batch.push_back(EdgeMutation::Add(src, dst, static_cast<Weight>(0.1 + rng.NextDouble())));
    } else if (roll < 0.55) {
      batch.push_back(EdgeMutation::Delete(src, dst));
    } else if (roll < 0.65) {
      // Flip-flop: add then delete (or vice versa) the same endpoints.
      batch.push_back(EdgeMutation::Add(src, dst));
      batch.push_back(EdgeMutation::Delete(src, dst));
    } else if (roll < 0.75) {
      batch.push_back(EdgeMutation::UpdateWeight(src, dst, static_cast<Weight>(0.5 + rng.NextDouble())));
    } else if (roll < 0.80) {
      batch.push_back(EdgeMutation::Add(src, src));  // self loop: must be dropped
    } else if (roll < 0.88) {
      // Touch a vertex just beyond the current range.
      batch.push_back(EdgeMutation::Add(src, n + static_cast<VertexId>(rng.NextBounded(3))));
    } else {
      // Duplicate of an existing edge (no-op add).
      const auto nbrs = graph.OutNeighbors(src);
      if (!nbrs.empty()) {
        batch.push_back(EdgeMutation::Add(src, nbrs[rng.NextBounded(nbrs.size())]));
      }
    }
  }
  return batch;
}

class FuzzSweep : public testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, PageRankLongAdversarialStream) {
  const uint64_t seed = GetParam();
  EdgeList initial = GenerateRmat(300, 2200, {.seed = seed, .assign_random_weights = true});
  MutableGraph g1(initial);
  MutableGraph g2(initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  bolt.InitialCompute();
  ligra.InitialCompute();
  Rng rng(seed * 31 + 7);
  for (int round = 0; round < 12; ++round) {
    const MutationBatch batch = AdversarialBatch(g1, rng, 1 + rng.NextBounded(40));
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7)
        << "seed=" << seed << " round=" << round;
    ASSERT_TRUE(g1.CheckInvariants());
  }
}

TEST_P(FuzzSweep, CoEMWithPrunedHistory) {
  const uint64_t seed = GetParam();
  EdgeList initial = GenerateRmat(300, 2200, {.seed = seed + 1000, .assign_random_weights = true});
  CoEM algo(300, 0.1, seed);
  MutableGraph g1(initial);
  MutableGraph g2(initial);
  GraphBoltEngine<CoEM> bolt(&g1, algo, {.max_iterations = 10, .history_size = 4});
  LigraEngine<CoEM> ligra(&g2, algo, {.max_iterations = 10});
  bolt.InitialCompute();
  ligra.InitialCompute();
  Rng rng(seed * 17 + 3);
  for (int round = 0; round < 10; ++round) {
    const MutationBatch batch = AdversarialBatch(g1, rng, 1 + rng.NextBounded(25));
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7)
        << "seed=" << seed << " round=" << round;
  }
}

TEST_P(FuzzSweep, SsspConvergenceStream) {
  const uint64_t seed = GetParam();
  EdgeList initial = GenerateRmat(300, 2200, {.seed = seed + 2000, .assign_random_weights = true});
  MutableGraph g1(initial);
  MutableGraph g2(initial);
  GraphBoltEngine<Sssp> bolt(&g1, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
  LigraEngine<Sssp> ligra(&g2, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  Rng rng(seed * 13 + 11);
  for (int round = 0; round < 10; ++round) {
    const MutationBatch batch = AdversarialBatch(g1, rng, 1 + rng.NextBounded(25));
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9)
        << "seed=" << seed << " round=" << round;
  }
}

TEST_P(FuzzSweep, LabelPropagationConvergenceMode) {
  const uint64_t seed = GetParam();
  EdgeList initial = GenerateRmat(300, 2200, {.seed = seed + 3000, .assign_random_weights = true});
  LabelPropagation<3> algo(300, 0.15, seed, /*tolerance=*/1e-7);
  MutableGraph g1(initial);
  MutableGraph g2(initial);
  GraphBoltEngine<LabelPropagation<3>> bolt(&g1, algo,
                                            {.max_iterations = 50, .run_to_convergence = true});
  LigraEngine<LabelPropagation<3>> ligra(&g2, algo,
                                         {.max_iterations = 50, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  Rng rng(seed * 7 + 29);
  for (int round = 0; round < 8; ++round) {
    const MutationBatch batch = AdversarialBatch(g1, rng, 1 + rng.NextBounded(20));
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    // Convergence-mode tolerance scheduling admits drift up to ~tolerance
    // amplified by the propagation depth.
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-4)
        << "seed=" << seed << " round=" << round;
  }
}

// Seed selection (env-sharded) lives in tests/test_util.h so every fuzz
// target shards identically in CI.
INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, testing::ValuesIn(FuzzSeeds()));

}  // namespace
}  // namespace graphbolt
