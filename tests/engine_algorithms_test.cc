// Cross-engine equivalence and streaming correctness for the remaining
// iterative algorithms: Label Propagation, CoEM, Belief Propagation,
// Collaborative Filtering, SSSP and BFS.
#include <gtest/gtest.h>

#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// Generic harness: initial equivalence + N streamed batches compared against
// a restarting Ligra engine.
template <typename Algo>
void StreamAndCompare(Algo algo, const EdgeList& full, int rounds, size_t batch_size,
                      double tolerance, uint32_t max_iterations = 10,
                      bool run_to_convergence = false) {
  StreamSplit split = SplitForStreaming(full, 0.5, 40);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<Algo> bolt(
      &g1, algo, {.max_iterations = max_iterations, .run_to_convergence = run_to_convergence});
  LigraEngine<Algo> ligra(
      &g2, algo, {.max_iterations = max_iterations, .run_to_convergence = run_to_convergence});
  bolt.InitialCompute();
  ligra.InitialCompute();
  ASSERT_LT(MaxGap(bolt.values(), ligra.values()), tolerance) << "initial";

  UpdateStream stream(split.held_back, 41);
  for (int round = 0; round < rounds; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = batch_size, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), tolerance) << "round " << round;
  }
}

// ----- Label Propagation ----------------------------------------------------

TEST(LabelPropagation, SeedsStayClamped) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 50});
  MutableGraph graph(list);
  LabelPropagation<2> algo(graph.num_vertices(), 0.2, 51);
  LigraEngine<LabelPropagation<2>> engine(&graph, algo);
  engine.InitialCompute();
  int seeds_checked = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (algo.IsSeed(v)) {
      const auto& value = engine.values()[v];
      EXPECT_TRUE(value[0] == 1.0 || value[1] == 1.0);
      ++seeds_checked;
    }
  }
  EXPECT_GT(seeds_checked, 0);
}

TEST(LabelPropagation, ValuesAreDistributions) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 52});
  MutableGraph graph(list);
  LabelPropagation<3> algo(graph.num_vertices(), 0.15, 53);
  LigraEngine<LabelPropagation<3>> engine(&graph, algo);
  engine.InitialCompute();
  for (const auto& value : engine.values()) {
    double total = 0.0;
    for (const double p : value) {
      EXPECT_GE(p, -1e-12);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LabelPropagation, EnginesAgree) {
  EdgeList list = GenerateRmat(600, 5000, {.seed = 54, .assign_random_weights = true});
  MutableGraph g1(list);
  MutableGraph g2(list);
  MutableGraph g3(list);
  LabelPropagation<2> algo(list.num_vertices(), 0.1, 55);
  LigraEngine<LabelPropagation<2>> ligra(&g1, algo);
  ResetEngine<LabelPropagation<2>> reset(&g2, algo);
  GraphBoltEngine<LabelPropagation<2>> bolt(&g3, algo);
  ligra.InitialCompute();
  reset.InitialCompute();
  bolt.InitialCompute();
  EXPECT_LT(MaxGap(ligra.values(), reset.values()), 1e-8);
  EXPECT_LT(MaxGap(ligra.values(), bolt.values()), 1e-8);
}

TEST(LabelPropagation, StreamingMatchesRestart) {
  EdgeList full = GenerateRmat(800, 7000, {.seed = 56, .assign_random_weights = true});
  StreamAndCompare(LabelPropagation<2>(full.num_vertices(), 0.1, 57), full, 6, 40, 1e-7);
}

TEST(LabelPropagation, ThreeLabelStreaming) {
  EdgeList full = GenerateRmat(500, 4000, {.seed = 58});
  StreamAndCompare(LabelPropagation<3>(full.num_vertices(), 0.12, 59), full, 5, 30, 1e-7);
}

// ----- CoEM -------------------------------------------------------------------

TEST(CoEM, SeedsClampedToOne) {
  EdgeList list = GenerateRmat(300, 2000, {.seed = 60});
  MutableGraph graph(list);
  CoEM algo(graph.num_vertices(), 0.1, 61);
  LigraEngine<CoEM> engine(&graph, algo);
  engine.InitialCompute();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (algo.IsSeed(v)) {
      EXPECT_DOUBLE_EQ(engine.values()[v], 1.0);
    } else {
      EXPECT_GE(engine.values()[v], 0.0);
      EXPECT_LE(engine.values()[v], 1.0 + 1e-9);
    }
  }
}

TEST(CoEM, EnginesAgree) {
  EdgeList list = GenerateRmat(600, 5000, {.seed = 62, .assign_random_weights = true});
  MutableGraph g1(list);
  MutableGraph g2(list);
  CoEM algo(list.num_vertices(), 0.08, 63);
  LigraEngine<CoEM> ligra(&g1, algo);
  GraphBoltEngine<CoEM> bolt(&g2, algo);
  ligra.InitialCompute();
  bolt.InitialCompute();
  EXPECT_LT(MaxGap(ligra.values(), bolt.values()), 1e-9);
}

TEST(CoEM, StreamingMatchesRestart) {
  // CoEM's ∮ divides by the in-weight sum, which mutations change: this
  // exercises the context-changed refinement path on the target side.
  EdgeList full = GenerateRmat(800, 7000, {.seed = 64, .assign_random_weights = true});
  StreamAndCompare(CoEM(full.num_vertices(), 0.08, 65), full, 6, 40, 1e-7);
}

// ----- Belief Propagation -----------------------------------------------------

TEST(BeliefPropagation, ValuesAreDistributions) {
  EdgeList list = GenerateRmat(300, 2500, {.seed = 66});
  MutableGraph graph(list);
  LigraEngine<BeliefPropagation<3>> engine(&graph, BeliefPropagation<3>{});
  engine.InitialCompute();
  for (const auto& value : engine.values()) {
    double total = 0.0;
    for (const double p : value) {
      EXPECT_GT(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(BeliefPropagation, EnginesAgree) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 67});
  MutableGraph g1(list);
  MutableGraph g2(list);
  LigraEngine<BeliefPropagation<3>> ligra(&g1, BeliefPropagation<3>{});
  GraphBoltEngine<BeliefPropagation<3>> bolt(&g2, BeliefPropagation<3>{});
  ligra.InitialCompute();
  bolt.InitialCompute();
  EXPECT_LT(MaxGap(ligra.values(), bolt.values()), 1e-7);
}

TEST(BeliefPropagation, StreamingMatchesRestart) {
  // Complex aggregation: refinement must reproduce old contributions from
  // old values on the fly (retract+propagate pairs).
  EdgeList full = GenerateRmat(500, 4000, {.seed = 68});
  StreamAndCompare(BeliefPropagation<3>{}, full, 6, 30, 1e-6);
}

TEST(BeliefPropagation, TwoStateStreaming) {
  EdgeList full = GenerateRmat(300, 2500, {.seed = 69});
  StreamAndCompare(BeliefPropagation<2>{}, full, 4, 20, 1e-6);
}

// ----- Collaborative Filtering ------------------------------------------------

TEST(CollaborativeFiltering, EnginesAgree) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 70, .assign_random_weights = true});
  MutableGraph g1(list);
  MutableGraph g2(list);
  LigraEngine<CollaborativeFiltering<4>> ligra(&g1, CollaborativeFiltering<4>{});
  GraphBoltEngine<CollaborativeFiltering<4>> bolt(&g2, CollaborativeFiltering<4>{});
  ligra.InitialCompute();
  bolt.InitialCompute();
  EXPECT_LT(MaxGap(ligra.values(), bolt.values()), 1e-6);
}

TEST(CollaborativeFiltering, StreamingMatchesRestart) {
  // The paper's flagship complex aggregation (matrix + vector sums with
  // on-the-fly discrete contribution evaluation).
  EdgeList full = GenerateRmat(400, 3500, {.seed = 71, .assign_random_weights = true});
  StreamAndCompare(CollaborativeFiltering<4>{}, full, 5, 25, 1e-5);
}

TEST(CollaborativeFiltering, IsolatedVertexKeepsPrior) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 0.8f);
  MutableGraph graph(std::move(list));
  CollaborativeFiltering<4> algo;
  LigraEngine<CollaborativeFiltering<4>> engine(&graph, algo);
  engine.InitialCompute();
  // Vertex 2 has no in-edges: value equals its deterministic prior.
  const auto prior = algo.InitialValue(2, VertexContext{});
  EXPECT_LT(ValueGap(engine.values()[2], prior), 1e-12);
}

// ----- SSSP / BFS (non-decomposable min) ---------------------------------------

TEST(Sssp, KnownDistancesOnChain) {
  MutableGraph graph(GenerateChain(6));
  GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                               {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_DOUBLE_EQ(engine.values()[v], static_cast<double>(v));
  }
}

TEST(Sssp, UnreachableStaysInfinite) {
  EdgeList list;
  list.set_num_vertices(4);
  list.Add(0, 1);
  list.Add(2, 3);  // island
  MutableGraph graph(std::move(list));
  GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                               {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[1], 1.0);
  EXPECT_GE(engine.values()[2], kUnreachable);
  EXPECT_GE(engine.values()[3], kUnreachable);
}

TEST(Sssp, StreamingMatchesRestart) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 72, .assign_random_weights = true});
  StreamAndCompare(Sssp(0), full, 6, 30, 1e-9, /*max_iterations=*/128,
                   /*run_to_convergence=*/true);
}

TEST(Sssp, DeletionLengthensPath) {
  // 0->1->2 and a long detour 0->3->4->2. Deleting 1->2 must lengthen d(2).
  EdgeList list;
  list.set_num_vertices(5);
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(0, 3);
  list.Add(3, 4);
  list.Add(4, 2);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                               {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[2], 2.0);
  engine.ApplyMutations({EdgeMutation::Delete(1, 2)});
  EXPECT_DOUBLE_EQ(engine.values()[2], 3.0);
  engine.ApplyMutations({EdgeMutation::Add(1, 2)});
  EXPECT_DOUBLE_EQ(engine.values()[2], 2.0);
}

TEST(Bfs, HopCountsIgnoreWeights) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 10.0f);
  list.Add(1, 2, 10.0f);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<Bfs> engine(&graph, Bfs(0), {.max_iterations = 16, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[1], 1.0);
  EXPECT_DOUBLE_EQ(engine.values()[2], 2.0);
}

TEST(Bfs, StreamingMatchesRestart) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 73});
  StreamAndCompare(Bfs(0), full, 5, 30, 1e-9, /*max_iterations=*/64,
                   /*run_to_convergence=*/true);
}

}  // namespace
}  // namespace graphbolt
