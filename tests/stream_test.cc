// Unit tests for the update-stream construction (§5.1 methodology).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/generators.h"
#include "src/stream/update_stream.h"

namespace graphbolt {
namespace {

TEST(SplitForStreaming, PartitionsEdges) {
  EdgeList full = GenerateErdosRenyi(100, 1000, 2);
  StreamSplit split = SplitForStreaming(full, 0.5, 7);
  EXPECT_EQ(split.initial.num_edges() + split.held_back.size(), 1000u);
  EXPECT_EQ(split.initial.num_edges(), 500u);
  EXPECT_EQ(split.initial.num_vertices(), 100u);
}

TEST(SplitForStreaming, DeterministicForSeed) {
  EdgeList full = GenerateErdosRenyi(50, 200, 3);
  StreamSplit a = SplitForStreaming(full, 0.6, 5);
  StreamSplit b = SplitForStreaming(full, 0.6, 5);
  ASSERT_EQ(a.held_back.size(), b.held_back.size());
  for (size_t i = 0; i < a.held_back.size(); ++i) {
    EXPECT_EQ(a.held_back[i].src, b.held_back[i].src);
    EXPECT_EQ(a.held_back[i].dst, b.held_back[i].dst);
  }
}

TEST(SplitForStreaming, FullFractionKeepsEverything) {
  EdgeList full = GenerateErdosRenyi(30, 100, 4);
  StreamSplit split = SplitForStreaming(full, 1.0, 1);
  EXPECT_EQ(split.initial.num_edges(), 100u);
  EXPECT_TRUE(split.held_back.empty());
}

TEST(UpdateStream, BatchHasRequestedSize) {
  EdgeList full = GenerateErdosRenyi(200, 2000, 6);
  StreamSplit split = SplitForStreaming(full, 0.5, 8);
  MutableGraph graph(split.initial);
  UpdateStream stream(split.held_back, 9);
  MutationBatch batch = stream.NextBatch(graph, {.size = 100, .add_fraction = 0.5});
  // Deletions of sampled existing edges always succeed; additions come from
  // the held-back pool. Batch size may drop slightly when an addition
  // synthesis gives up, but not by much.
  EXPECT_GE(batch.size(), 95u);
  EXPECT_LE(batch.size(), 100u);
}

TEST(UpdateStream, AddFractionRespected) {
  EdgeList full = GenerateErdosRenyi(200, 2000, 6);
  StreamSplit split = SplitForStreaming(full, 0.5, 8);
  MutableGraph graph(split.initial);
  UpdateStream stream(split.held_back, 10);
  MutationBatch batch = stream.NextBatch(graph, {.size = 400, .add_fraction = 0.75});
  size_t adds = 0;
  for (const EdgeMutation& m : batch) {
    adds += m.kind == MutationKind::kAddEdge;
  }
  EXPECT_GT(adds, batch.size() / 2);
  EXPECT_LT(adds, batch.size());
}

TEST(UpdateStream, AllAdditionsDrainHeldBack) {
  EdgeList full = GenerateErdosRenyi(100, 600, 2);
  StreamSplit split = SplitForStreaming(full, 0.5, 3);
  MutableGraph graph(split.initial);
  UpdateStream stream(split.held_back, 4);
  const size_t before = stream.remaining_additions();
  stream.NextBatch(graph, {.size = 50, .add_fraction = 1.0});
  EXPECT_EQ(stream.remaining_additions(), before - 50);
}

TEST(UpdateStream, DeletionsReferenceExistingEdges) {
  EdgeList full = GenerateErdosRenyi(100, 800, 5);
  StreamSplit split = SplitForStreaming(full, 0.5, 6);
  MutableGraph graph(split.initial);
  UpdateStream stream(split.held_back, 7);
  MutationBatch batch = stream.NextBatch(graph, {.size = 200, .add_fraction = 0.0});
  for (const EdgeMutation& m : batch) {
    ASSERT_EQ(m.kind, MutationKind::kDeleteEdge);
    EXPECT_TRUE(graph.HasEdge(m.src, m.dst)) << m.src << "->" << m.dst;
  }
}

TEST(UpdateStream, HighDegreeTargetingAnchorsAtHubs) {
  EdgeList full = GenerateRmat(2000, 20000, {.seed = 12});
  StreamSplit split = SplitForStreaming(full, 0.8, 13);
  MutableGraph graph(split.initial);
  UpdateStream stream({}, 14);
  MutationBatch batch = stream.NextBatch(
      graph, {.size = 200, .add_fraction = 0.5, .targeting = MutationTargeting::kHighDegree});
  const double avg = static_cast<double>(graph.num_edges()) / graph.num_vertices();
  size_t hub_anchors = 0;
  for (const EdgeMutation& m : batch) {
    if (graph.OutDegree(m.dst) >= avg * 4.0) {
      ++hub_anchors;
    }
  }
  EXPECT_GT(hub_anchors, batch.size() / 2);
}

TEST(UpdateStream, LowDegreeTargetingAvoidsHubs) {
  EdgeList full = GenerateRmat(2000, 20000, {.seed = 15});
  StreamSplit split = SplitForStreaming(full, 0.8, 16);
  MutableGraph graph(split.initial);
  UpdateStream stream({}, 17);
  MutationBatch batch = stream.NextBatch(
      graph, {.size = 200, .add_fraction = 0.5, .targeting = MutationTargeting::kLowDegree});
  const double avg = static_cast<double>(graph.num_edges()) / graph.num_vertices();
  size_t tail_anchors = 0;
  for (const EdgeMutation& m : batch) {
    if (graph.OutDegree(m.dst) <= avg * 0.5 + 1) {
      ++tail_anchors;
    }
  }
  EXPECT_GT(tail_anchors, batch.size() * 3 / 4);
}

TEST(UpdateStream, StreamedBatchesApplyCleanly) {
  EdgeList full = GenerateRmat(500, 5000, {.seed = 18});
  StreamSplit split = SplitForStreaming(full, 0.5, 19);
  MutableGraph graph(split.initial);
  UpdateStream stream(split.held_back, 20);
  for (int round = 0; round < 10; ++round) {
    MutationBatch batch = stream.NextBatch(graph, {.size = 50, .add_fraction = 0.6});
    graph.ApplyBatch(batch);
    ASSERT_TRUE(graph.CheckInvariants());
  }
}

}  // namespace
}  // namespace graphbolt
