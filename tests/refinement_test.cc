// Tests targeting the dependency-driven refinement machinery itself:
// the Figure 2 motivation (naive reuse is wrong, refinement is right),
// dependency-store bookkeeping, and refinement edge cases.
#include <gtest/gtest.h>

#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/core/dependency_store.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// ----- Figure 2 motivation -----------------------------------------------------

TEST(Motivation, NaiveReuseProducesWrongResults) {
  // §2.2: starting incremental computation from the old converged values
  // (without refinement) violates BSP semantics and lands on wrong answers.
  EdgeList full = GenerateRmat(800, 6000, {.seed = 80});
  StreamSplit split = SplitForStreaming(full, 0.5, 81);
  MutableGraph g_exact(split.initial);
  MutableGraph g_naive(split.initial);

  LabelPropagation<2> algo(full.num_vertices(), 0.1, 82);
  LigraEngine<LabelPropagation<2>> exact(&g_exact, algo);
  exact.InitialCompute();

  // Naive reuse: run 10 iterations from the PRE-mutation converged values
  // instead of from initial values (S*(GT, R_G) in Figure 1).
  LigraEngine<LabelPropagation<2>> naive(&g_naive, algo);
  naive.InitialCompute();

  UpdateStream stream(split.held_back, 83);
  const MutationBatch batch = stream.NextBatch(g_exact, {.size = 100, .add_fraction = 0.6});
  exact.ApplyMutations(batch);  // restart: correct S*(GT, I)

  // Hand-rolled naive reuse on the same batch.
  g_naive.ApplyBatch(batch);
  std::vector<std::array<double, 2>> stale = naive.values();
  {
    // Continue iterating from stale values on the mutated graph.
    auto contexts = ComputeVertexContexts(g_naive);
    for (int iter = 0; iter < 10; ++iter) {
      std::vector<std::array<double, 2>> next(g_naive.num_vertices());
      for (VertexId v = 0; v < g_naive.num_vertices(); ++v) {
        auto agg = algo.IdentityAggregate();
        const auto in_nbrs = g_naive.InNeighbors(v);
        const auto in_wts = g_naive.InWeights(v);
        for (size_t i = 0; i < in_nbrs.size(); ++i) {
          algo.AggregateAtomic(&agg,
                               algo.ContributionOf(in_nbrs[i], stale[in_nbrs[i]], in_wts[i],
                                                   contexts[in_nbrs[i]]));
        }
        next[v] = algo.VertexCompute(v, agg, contexts[v]);
      }
      stale.swap(next);
    }
  }
  // The naive result must differ measurably from the exact one (Table 1),
  // while GraphBolt matches it (tested throughout this suite).
  EXPECT_GT(MaxGap(stale, exact.values()), 1e-4);
}

TEST(Motivation, GraphBoltMatchesExactWhereNaiveDiverges) {
  EdgeList full = GenerateRmat(800, 6000, {.seed = 80});
  StreamSplit split = SplitForStreaming(full, 0.5, 81);
  MutableGraph g_exact(split.initial);
  MutableGraph g_bolt(split.initial);

  LabelPropagation<2> algo(full.num_vertices(), 0.1, 82);
  LigraEngine<LabelPropagation<2>> exact(&g_exact, algo);
  GraphBoltEngine<LabelPropagation<2>> bolt(&g_bolt, algo);
  exact.InitialCompute();
  bolt.InitialCompute();

  UpdateStream stream(split.held_back, 83);
  const MutationBatch batch = stream.NextBatch(g_exact, {.size = 100, .add_fraction = 0.6});
  exact.ApplyMutations(batch);
  bolt.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), exact.values()), 1e-7);
}

// ----- Dependency store ----------------------------------------------------------

TEST(DependencyStore, SnapshotsInOrder) {
  DependencyStore<double> store;
  store.Reset(4, 10);
  store.SnapshotLevel(1, {1, 2, 3, 4}, AtomicBitset(4));
  store.SnapshotLevel(2, {5, 6, 7, 8}, AtomicBitset(4));
  EXPECT_EQ(store.tracked_levels(), 2u);
  EXPECT_EQ(store.total_levels(), 2u);
  EXPECT_DOUBLE_EQ(store.At(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(store.At(2, 0), 5.0);
}

TEST(DependencyStore, HorizontalPruningDropsAggregates) {
  DependencyStore<double> store;
  store.Reset(2, 1);  // history of one level
  store.SnapshotLevel(1, {1, 2}, AtomicBitset(2));
  store.SnapshotLevel(2, {3, 4}, AtomicBitset(2));
  EXPECT_EQ(store.tracked_levels(), 1u);
  EXPECT_EQ(store.total_levels(), 2u);  // changed bits kept for both
  EXPECT_TRUE(store.IsTracked(1));
  EXPECT_FALSE(store.IsTracked(2));
}

TEST(DependencyStore, VerticalPruningAccounting) {
  DependencyStore<double> store;
  store.Reset(3, 10);
  store.SnapshotLevel(1, {1, 2, 3}, AtomicBitset(3));
  // Only vertex 0 changes at level 2: one fresh logical entry.
  store.SnapshotLevel(2, {9, 2, 3}, AtomicBitset(3));
  EXPECT_EQ(store.logical_entries(), 3u + 1u);
  // Nothing changes at level 3.
  store.SnapshotLevel(3, {9, 2, 3}, AtomicBitset(3));
  EXPECT_EQ(store.logical_entries(), 4u);
  EXPECT_GT(store.logical_bytes(), 4u * sizeof(double));
}

TEST(DependencyStore, GrowVerticesExtendsLevels) {
  DependencyStore<double> store;
  store.Reset(2, 10);
  AtomicBitset bits(2);
  bits.Set(1);
  store.SnapshotLevel(1, {1, 2}, std::move(bits));
  store.GrowVertices(4, 0.0);
  EXPECT_EQ(store.num_vertices(), 4u);
  EXPECT_DOUBLE_EQ(store.At(1, 3), 0.0);
  EXPECT_TRUE(store.ChangedAt(1).Test(1));
  EXPECT_FALSE(store.ChangedAt(1).Test(3));
}

TEST(DependencyStore, ChangedBitsPerLevel) {
  DependencyStore<double> store;
  store.Reset(3, 10);
  AtomicBitset bits1(3);
  bits1.Set(0);
  store.SnapshotLevel(1, {1, 2, 3}, std::move(bits1));
  AtomicBitset bits2(3);
  bits2.Set(2);
  store.SnapshotLevel(2, {1, 2, 4}, std::move(bits2));
  EXPECT_TRUE(store.ChangedAt(1).Test(0));
  EXPECT_FALSE(store.ChangedAt(1).Test(2));
  EXPECT_TRUE(store.ChangedAt(2).Test(2));
}

// ----- Refinement edge cases -------------------------------------------------------

TEST(Refinement, StoreReflectsRefinedStateAcrossBatches) {
  // After a batch, the store must describe the new graph's run exactly, so a
  // second batch refines from a consistent base. Verified by checking the
  // refined engine against a fresh engine built on the mutated graph.
  EdgeList full = GenerateRmat(500, 4000, {.seed = 84});
  StreamSplit split = SplitForStreaming(full, 0.5, 85);
  MutableGraph g1(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();

  UpdateStream stream(split.held_back, 86);
  for (int round = 0; round < 3; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 40, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
  }
  // Fresh engine on the final snapshot: the refined store must agree level
  // by level through its tracked aggregations' derived values.
  MutableGraph g2(g1.ToEdgeList());
  GraphBoltEngine<PageRank> fresh(&g2, PageRank{});
  fresh.InitialCompute();
  EXPECT_LT(MaxGap(bolt.values(), fresh.values()), 1e-7);
  ASSERT_EQ(bolt.store().tracked_levels(), fresh.store().tracked_levels());
  for (uint32_t level = 1; level <= fresh.store().tracked_levels(); ++level) {
    double gap = 0.0;
    for (VertexId v = 0; v < g1.num_vertices(); ++v) {
      gap = std::max(gap, std::fabs(bolt.store().At(level, v) - fresh.store().At(level, v)));
    }
    EXPECT_LT(gap, 1e-7) << "level " << level;
  }
}

TEST(Refinement, DeleteOnlyBatch) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 87});
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  // Delete the first 30 edges of the export.
  MutationBatch batch;
  const EdgeList snapshot = g1.ToEdgeList();
  for (size_t i = 0; i < 30 && i < snapshot.num_edges(); ++i) {
    batch.push_back(EdgeMutation::Delete(snapshot.edges()[i].src, snapshot.edges()[i].dst));
  }
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), 1e-8);
}

TEST(Refinement, AddOnlyBatch) {
  EdgeList full = GenerateRmat(400, 4000, {.seed = 88});
  StreamSplit split = SplitForStreaming(full, 0.6, 89);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  MutationBatch batch;
  for (size_t i = 0; i < 50 && i < split.held_back.size(); ++i) {
    batch.push_back(EdgeMutation::Add(split.held_back[i].src, split.held_back[i].dst,
                                      split.held_back[i].weight));
  }
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), 1e-8);
}

TEST(Refinement, AddAndDeleteSameVertexNeighborhood) {
  // Concentrated mutations around one hub stress the transitive pass.
  EdgeList list = GenerateStar(50);
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  const MutationBatch batch{
      EdgeMutation::Delete(0, 1), EdgeMutation::Delete(0, 2), EdgeMutation::Add(1, 2),
      EdgeMutation::Add(2, 3),    EdgeMutation::Delete(3, 0),
  };
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9);
}

TEST(Refinement, MutationsOnEmptyishGraph) {
  // Start from a nearly empty graph; additions dominate everything.
  EdgeList list;
  list.set_num_vertices(10);
  list.Add(0, 1);
  MutableGraph g1(list);
  MutableGraph g2(list);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  MutationBatch batch;
  for (VertexId v = 0; v < 9; ++v) {
    batch.push_back(EdgeMutation::Add(v, v + 1));
    batch.push_back(EdgeMutation::Add(v + 1, v));
  }
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9);
}

TEST(Refinement, LargeBatchStillExact) {
  // A batch touching a third of the graph: refinement cost approaches a
  // restart but correctness must hold.
  EdgeList full = GenerateRmat(600, 6000, {.seed = 90});
  StreamSplit split = SplitForStreaming(full, 0.5, 91);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> bolt(&g1, PageRank{});
  bolt.InitialCompute();
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  ligra.InitialCompute();

  UpdateStream stream(split.held_back, 92);
  const MutationBatch batch = stream.NextBatch(g1, {.size = 1000, .add_fraction = 0.6});
  bolt.ApplyMutations(batch);
  ligra.ApplyMutations(batch);
  EXPECT_LT(MaxGap(bolt.values(), ligra.values()), 1e-7);
}

TEST(Refinement, StatsReportRefinementWork) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 93});
  MutableGraph graph(list);
  GraphBoltEngine<PageRank> bolt(&graph, PageRank{});
  bolt.InitialCompute();
  const uint64_t initial_edges = bolt.stats().edges_processed;
  EXPECT_GT(initial_edges, 0u);
  // Find an edge that is actually absent so the batch is not a no-op.
  VertexId dst = 5;
  while (graph.HasEdge(0, dst)) {
    ++dst;
  }
  bolt.ApplyMutations({EdgeMutation::Add(0, dst)});
  EXPECT_GT(bolt.stats().edges_processed, 0u);
  EXPECT_LT(bolt.stats().edges_processed, initial_edges);
  EXPECT_EQ(bolt.stats().iterations, 10u);
  EXPECT_GE(bolt.stats().seconds, 0.0);
  EXPECT_GE(bolt.stats().mutation_seconds, 0.0);
}

}  // namespace
}  // namespace graphbolt
