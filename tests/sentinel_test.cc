// Sentinel tier: admission control, poison-batch quarantine, overload
// policies (kShedOldest / kDegrade), and the stall watchdog, driven against
// a real StreamDriver with deterministic fault injection.
//
// The differential tests follow the ChaosStream convention
// (fault_recovery_test.cc): one pool thread, pre-generated batch streams,
// and bitwise (==) comparison against a fault-free reference. Tests whose
// overload policy reorders batches (shedding re-applies at the barrier)
// use addition-only streams against ResetEngine, whose result depends only
// on the final graph, so equality stays exact under reordering.
//
// Compiled with GRAPHBOLT_FAULT_INJECTION=1 (like fault_recovery_test) so
// kQuarantineAppend and kStageStall are live hooks. `ctest -L fault` runs
// it; the quarantine round-trip is seed-swept (`-L fuzz`).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/gutter_buffer.h"
#include "src/driver/stream_driver.h"
#include "src/engine/reset_engine.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/bounded_queue.h"
#include "src/parallel/thread_pool.h"
#include "src/sentinel/admission.h"
#include "src/sentinel/quarantine.h"
#include "src/sentinel/watchdog.h"
#include "src/stream/update_stream.h"
#include "src/util/timer.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

constexpr auto kTick = std::chrono::milliseconds(10);

uint64_t SplitMix(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Pre-generates `count` batches against an evolving shadow graph (same
// helper as fault_recovery_test.cc, so both tiers see comparable streams).
std::vector<MutationBatch> MakeBatches(const StreamSplit& split, size_t count, size_t batch_size,
                                       uint64_t seed) {
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, seed);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < count; ++i) {
    MutationBatch batch = stream.NextBatch(shadow, {.size = batch_size, .add_fraction = 0.6});
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Chops the held-back additions into distinct-edge, addition-only batches.
// Distinct edges make the final graph independent of batch boundaries and
// apply order, which is what lets shedding tests compare bitwise.
std::vector<MutationBatch> AdditionChunks(const std::vector<Edge>& edges, size_t chunk) {
  std::vector<MutationBatch> out;
  for (size_t i = 0; i < edges.size(); i += chunk) {
    MutationBatch batch;
    for (size_t j = i; j < std::min(i + chunk, edges.size()); ++j) {
      batch.push_back(EdgeMutation::Add(edges[j].src, edges[j].dst, edges[j].weight));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

// Spins until the driver reports healthy again (watchdog auto-recovery runs
// on the watchdog thread, so the test just waits for it to land).
template <typename Driver>
bool AwaitHealthy(Driver& driver, int max_ticks = 500) {
  for (int i = 0; i < max_ticks; ++i) {
    if (driver.healthy()) {
      return true;
    }
    std::this_thread::sleep_for(kTick);
  }
  return false;
}

// Barrier that tolerates a stall landing mid-wait: retry until a barrier
// completes on a healthy driver (never calls Recover — that is the
// watchdog's job in these tests).
template <typename Driver>
bool BarrierOnHealthy(Driver& driver, int max_ticks = 500) {
  for (int i = 0; i < max_ticks; ++i) {
    if (driver.healthy()) {
      driver.PrepQuery();
      if (driver.healthy()) {
        return true;
      }
    }
    std::this_thread::sleep_for(kTick);
  }
  return false;
}

// ----- Admission screen (pure, no driver) -----------------------------------

TEST(AdmissionScreen, CleanBatchAdmitted) {
  MutationBatch batch = {EdgeMutation::Add(1, 2, 0.5f), EdgeMutation::Delete(2, 3),
                         EdgeMutation::UpdateWeight(3, 4, 1.5f)};
  const AdmissionVerdict verdict = ScreenBatch(batch, AdmissionLimits{});
  EXPECT_TRUE(verdict.admitted());
  EXPECT_EQ(verdict.reason, RejectReason::kNone);
}

TEST(AdmissionScreen, OversizedBatchRejected) {
  AdmissionLimits limits;
  limits.max_batch_mutations = 4;
  MutationBatch batch(5, EdgeMutation::Add(1, 2));
  EXPECT_EQ(ScreenBatch(batch, limits).reason, RejectReason::kOversizedBatch);
  batch.resize(4);
  // At the limit is fine (4 identical mutations stay under the flood
  // minimum, so the duplicate check does not apply).
  EXPECT_TRUE(ScreenBatch(batch, limits).admitted());
  limits.max_batch_mutations = 0;  // 0 = unlimited
  batch.resize(5);
  EXPECT_TRUE(ScreenBatch(batch, limits).admitted());
}

TEST(AdmissionScreen, OutOfRangeVertexRejectedWithIndex) {
  AdmissionLimits limits;
  limits.max_vertex_id = 100;
  MutationBatch batch = {EdgeMutation::Add(1, 2), EdgeMutation::Add(3, 101),
                         EdgeMutation::Add(4, 5)};
  const AdmissionVerdict verdict = ScreenBatch(batch, limits);
  EXPECT_EQ(verdict.reason, RejectReason::kVertexOutOfRange);
  EXPECT_EQ(verdict.offending_index, 1u);
  EXPECT_EQ(ScreenMutation(EdgeMutation::Add(101, 1), limits).reason,
            RejectReason::kVertexOutOfRange);
  EXPECT_TRUE(ScreenMutation(EdgeMutation::Add(100, 100), limits).admitted());
}

TEST(AdmissionScreen, NonFiniteWeightRejectedExceptOnDeletes) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  AdmissionLimits limits;
  EXPECT_EQ(ScreenMutation(EdgeMutation::Add(1, 2, nan), limits).reason,
            RejectReason::kNonFiniteWeight);
  EXPECT_EQ(ScreenMutation(EdgeMutation::UpdateWeight(1, 2, inf), limits).reason,
            RejectReason::kNonFiniteWeight);
  // A delete's weight field is dead payload — never screened.
  EXPECT_TRUE(ScreenMutation(EdgeMutation::Delete(1, 2), limits).admitted());
  limits.reject_non_finite_weights = false;
  EXPECT_TRUE(ScreenMutation(EdgeMutation::Add(1, 2, nan), limits).admitted());
  MutationBatch batch = {EdgeMutation::Add(1, 2), EdgeMutation::Add(2, 3, inf)};
  const AdmissionVerdict verdict = ScreenBatch(batch, AdmissionLimits{});
  EXPECT_EQ(verdict.reason, RejectReason::kNonFiniteWeight);
  EXPECT_EQ(verdict.offending_index, 1u);
}

TEST(AdmissionScreen, SelfLoopFloodRejectedOnlyAboveMinimum) {
  AdmissionLimits limits;  // flood_min_mutations = 64, max fraction 0.5
  MutationBatch flood;
  for (VertexId v = 0; v < 80; ++v) {
    flood.push_back(EdgeMutation::Add(v, v));  // distinct pairs: no dup flood
  }
  EXPECT_EQ(ScreenBatch(flood, limits).reason, RejectReason::kSelfLoopFlood);
  // The same junk below the flood minimum passes (normalization absorbs it).
  MutationBatch small(flood.begin(), flood.begin() + 32);
  EXPECT_TRUE(ScreenBatch(small, limits).admitted());
}

TEST(AdmissionScreen, DuplicateFloodRejected) {
  AdmissionLimits limits;  // max_duplicate_fraction = 0.9
  MutationBatch flood(100, EdgeMutation::Add(7, 9, 1.0f));  // 99/100 duplicates
  EXPECT_EQ(ScreenBatch(flood, limits).reason, RejectReason::kDuplicateFlood);
  // 50/100 duplicates is under the threshold.
  MutationBatch mixed;
  for (VertexId v = 0; v < 50; ++v) {
    mixed.push_back(EdgeMutation::Add(v, v + 1));
    mixed.push_back(EdgeMutation::Add(7, 9));
  }
  EXPECT_TRUE(ScreenBatch(mixed, limits).admitted());
}

// ----- Satellite units: backoff cap, evicting queue, gutter refill ----------

TEST(BackoffCap, DelayCappedAtMaxAcrossSleeps) {
  Backoff backoff(0.0004, 8.0, /*max_seconds=*/0.001, /*seed=*/7);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.0004);
  EXPECT_DOUBLE_EQ(backoff.max_seconds(), 0.001);
  backoff.Sleep();  // 0.0004 * 8 = 0.0032 -> capped
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.001);
  backoff.Sleep();  // stays at the cap
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.001);
}

TEST(BackoffCap, DefaultIsEffectivelyUncapped) {
  Backoff backoff(0.25, 2.0);
  EXPECT_GE(backoff.max_seconds(), 1e29);
  EXPECT_DOUBLE_EQ(backoff.next_delay_seconds(), 0.25);
}

TEST(BoundedQueueEvict, PushEvictOldestEvictsFifoHead) {
  BoundedQueue<int> queue(2);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  std::optional<int> evicted;
  ASSERT_TRUE(queue.PushEvictOldest(3, &evicted));
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 1);
  // Below capacity nothing is evicted.
  auto a = queue.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, 2);
  ASSERT_TRUE(queue.PushEvictOldest(4, &evicted));
  EXPECT_FALSE(evicted.has_value());
  EXPECT_EQ(queue.size(), 2u);
  queue.Close();
  EXPECT_FALSE(queue.PushEvictOldest(5, &evicted));
  EXPECT_FALSE(evicted.has_value());
}

TEST(GutterRefill, RefilledBatchGoesToTheFront) {
  GutterBuffer gutter;
  uint64_t coalesced = 0;
  gutter.Add(EdgeMutation::Add(1, 2));
  gutter.Add(EdgeMutation::Add(3, 4));
  MutationBatch taken = gutter.Take(/*coalesce=*/false, &coalesced);
  ASSERT_EQ(taken.size(), 2u);
  gutter.Add(EdgeMutation::Add(5, 6));
  gutter.Refill(std::move(taken));
  MutationBatch merged = gutter.Take(/*coalesce=*/false, &coalesced);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].src, 1u);
  EXPECT_EQ(merged[1].src, 3u);
  EXPECT_EQ(merged[2].src, 5u);
  // Refill into an empty gutter restores the batch as-is.
  gutter.Refill(std::move(merged));
  EXPECT_EQ(gutter.size(), 3u);
  EXPECT_TRUE(gutter.Take(false, &coalesced).size() == 3u && gutter.empty());
}

// ----- Watchdog (standalone) -------------------------------------------------

TEST(WatchdogUnit, FiresOncePerBusyEpisodeAndNeverWhenIdle) {
  StallWatchdog watchdog;
  std::atomic<int> fires{0};
  StallCause seen;
  std::mutex seen_mu;
  watchdog.Start({.poll_interval_seconds = 0.005, .stall_timeout_seconds = 0.03},
                 [&](const StallCause& cause) {
                   std::lock_guard<std::mutex> lock(seen_mu);
                   seen = cause;
                   fires.fetch_add(1);
                 });
  // Idle stages never stall.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_EQ(fires.load(), 0);

  watchdog.EnterStage(PipelineStage::kApply);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(fires.load(), 1);  // once per episode, not once per poll
  {
    std::lock_guard<std::mutex> lock(seen_mu);
    EXPECT_EQ(seen.stage, PipelineStage::kApply);
    EXPECT_GE(seen.stalled_seconds, 0.03);
  }
  watchdog.LeaveStage(PipelineStage::kApply);
  EXPECT_GE(watchdog.stalls_detected(), 1u);
  ASSERT_TRUE(watchdog.last_stall().has_value());
  watchdog.ClearStall();
  EXPECT_FALSE(watchdog.last_stall().has_value());

  // A new busy episode reports again.
  watchdog.EnterStage(PipelineStage::kCheckpoint);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(fires.load(), 2);
  watchdog.LeaveStage(PipelineStage::kCheckpoint);
  watchdog.Stop();
}

// ----- Quarantine: bitwise round-trip (seed-swept) ---------------------------

TEST(QuarantineFuzz, DeadLetterRoundTripsBitwise) {
  for (uint64_t seed : FuzzSeeds()) {
    SCOPED_TRACE(testing::Message() << "seed=" << seed);
    ScopedTempDir tmp;
    uint64_t rng = seed * 0x9e3779b97f4a7c15ULL + 1;
    std::vector<std::pair<RejectReason, MutationBatch>> expected;
    auto quarantine = std::make_unique<Quarantine>(tmp.path());
    for (int b = 0; b < 20; ++b) {
      MutationBatch batch;
      const size_t n = 1 + SplitMix(rng) % 50;
      for (size_t i = 0; i < n; ++i) {
        EdgeMutation m;
        m.kind = static_cast<MutationKind>(SplitMix(rng) % 3);
        m.src = static_cast<VertexId>(SplitMix(rng));
        m.dst = static_cast<VertexId>(SplitMix(rng));
        // Arbitrary bit patterns, including NaN/Inf/denormals: the
        // dead-letter WAL must preserve them exactly.
        m.weight = std::bit_cast<Weight>(static_cast<uint32_t>(SplitMix(rng)));
        batch.push_back(m);
      }
      const auto reason =
          static_cast<RejectReason>(1 + SplitMix(rng) % (static_cast<uint64_t>(
                                            RejectReason::kNumReasons) - 1));
      ASSERT_TRUE(quarantine->Append(reason, batch));
      expected.emplace_back(reason, std::move(batch));
    }
    ASSERT_EQ(quarantine->parked_batches(), expected.size());

    auto check = [&](size_t i, RejectReason reason, const MutationBatch& batch) {
      ASSERT_LT(i, expected.size());
      EXPECT_EQ(reason, expected[i].first);
      const MutationBatch& want = expected[i].second;
      ASSERT_EQ(batch.size(), want.size());
      for (size_t m = 0; m < batch.size(); ++m) {
        EXPECT_EQ(batch[m].kind, want[m].kind);
        EXPECT_EQ(batch[m].src, want[m].src);
        EXPECT_EQ(batch[m].dst, want[m].dst);
        EXPECT_EQ(std::bit_cast<uint32_t>(batch[m].weight),
                  std::bit_cast<uint32_t>(want[m].weight));
      }
    };

    // Non-consuming inspection view.
    size_t i = 0;
    EXPECT_EQ(quarantine->ForEach([&](RejectReason reason, MutationBatch&& batch) {
                check(i, reason, batch);
                ++i;
              }),
              expected.size());

    // The log survives a process restart: a fresh instance on the same
    // directory replays the identical records.
    quarantine.reset();
    quarantine = std::make_unique<Quarantine>(tmp.path());
    i = 0;
    EXPECT_EQ(quarantine->ForEach([&](RejectReason reason, MutationBatch&& batch) {
                check(i, reason, batch);
                ++i;
              }),
              expected.size());

    // Drain consumes: same records once, then empty.
    i = 0;
    EXPECT_EQ(quarantine->Drain([&](RejectReason reason, MutationBatch&& batch) {
                check(i, reason, batch);
                ++i;
              }),
              expected.size());
    EXPECT_EQ(quarantine->parked_batches(), 0u);
    EXPECT_EQ(quarantine->ForEach([](RejectReason, MutationBatch&&) {}), 0u);
  }
}

// ----- Driver integration: poison never reaches the engine -------------------

TEST(AdmissionDriver, PoisonBatchesQuarantinedBitwiseCleanResult) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir quarantine_dir;
  const EdgeList full = GenerateRmat(600, 5000, {.seed = 31});
  const StreamSplit split = SplitForStreaming(full, 0.5, 32);
  const std::vector<MutationBatch> valid = MakeBatches(split, 12, 80, 33);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  MutableGraph ref_graph(split.initial);
  GraphBoltEngine<PageRank> reference(&ref_graph, PageRank{});
  engine.InitialCompute();
  reference.InitialCompute();

  const VertexId max_id = full.num_vertices() * 4;
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.batch_size = 1u << 20,
                .flush_interval_seconds = 3600.0,
                .coalesce = false,
                .quarantine_dir = quarantine_dir.path(),
                .admission = {.max_batch_mutations = 512, .max_vertex_id = max_id}});

  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::vector<MutationBatch> poisons;
  poisons.push_back(MutationBatch(600, EdgeMutation::Add(1, 2)));        // oversized
  poisons.push_back({EdgeMutation::Add(max_id + 7, 1)});                 // out of range
  poisons.push_back({EdgeMutation::Add(1, 2), EdgeMutation::Add(2, 3, nan)});
  MutationBatch loops;
  for (VertexId v = 0; v < 80; ++v) {
    loops.push_back(EdgeMutation::Add(v, v));
  }
  poisons.push_back(std::move(loops));                                   // self-loop flood
  poisons.push_back(MutationBatch(100, EdgeMutation::Add(5, 6)));        // duplicate flood

  size_t poison_mutations = 0;
  for (size_t i = 0; i < valid.size(); ++i) {
    if (i < poisons.size()) {
      ASSERT_EQ(driver.IngestBatch(poisons[i]), 0u) << "poison batch " << i << " was admitted";
      poison_mutations += poisons[i].size();
    }
    ASSERT_EQ(driver.IngestBatch(valid[i]), valid[i].size());
    driver.Flush();
    reference.ApplyMutations(valid[i]);
  }
  driver.PrepQuery();

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.batches_quarantined, poisons.size());
  EXPECT_EQ(stats.mutations_quarantined, poison_mutations);
  EXPECT_EQ(driver.quarantined_batches(), poisons.size());
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_EQ(stats.mutations_enqueued, 12u * 80u);

  // Every reject is parked with the reason admission reported.
  std::vector<RejectReason> reasons;
  driver.quarantine()->ForEach(
      [&](RejectReason reason, MutationBatch&&) { reasons.push_back(reason); });
  ASSERT_EQ(reasons.size(), poisons.size());
  EXPECT_EQ(reasons[0], RejectReason::kOversizedBatch);
  EXPECT_EQ(reasons[1], RejectReason::kVertexOutOfRange);
  EXPECT_EQ(reasons[2], RejectReason::kNonFiniteWeight);
  EXPECT_EQ(reasons[3], RejectReason::kSelfLoopFlood);
  EXPECT_EQ(reasons[4], RejectReason::kDuplicateFlood);

  // The engine saw only the admitted stream: bitwise-identical to the
  // reference that never met the poison.
  const auto& values = engine.values();
  const auto& want = reference.values();
  ASSERT_EQ(values.size(), want.size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], want[v]) << "vertex " << v;
  }
}

TEST(AdmissionDriver, SingleMutationScreenedByIngest) {
  ScopedTempDir quarantine_dir;
  MutableGraph graph(GenerateRmat(64, 256, {.seed = 5}));
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.quarantine_dir = quarantine_dir.path(),
                .admission = {.max_vertex_id = 1000}});
  EXPECT_TRUE(driver.Ingest(EdgeMutation::Add(1, 2)));
  EXPECT_FALSE(driver.Ingest(EdgeMutation::Add(1001, 2)));
  EXPECT_FALSE(
      driver.Ingest(EdgeMutation::Add(3, 4, std::numeric_limits<float>::quiet_NaN())));
  driver.PrepQuery();
  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.batches_quarantined, 2u);
  EXPECT_EQ(stats.mutations_quarantined, 2u);
  EXPECT_EQ(stats.mutations_enqueued, 1u);
}

TEST(AdmissionDriver, QuarantineAppendFailureCountsDropped) {
  ScopedTempDir quarantine_dir;
  MutableGraph graph(GenerateRmat(64, 256, {.seed = 6}));
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultInjector injector(/*seed=*/0xdead);
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.fault_injector = &injector,
                .quarantine_dir = quarantine_dir.path(),
                .admission = {.max_vertex_id = 1000}});
  injector.ArmOnce(FaultSite::kQuarantineAppend, 1);
  MutationBatch poison = {EdgeMutation::Add(2000, 1), EdgeMutation::Add(2001, 2)};
  EXPECT_EQ(driver.IngestBatch(poison), 0u);
  EXPECT_GE(injector.fired(FaultSite::kQuarantineAppend), 1u);
  const EngineStats stats = driver.stats();
  // The dead-letter write failed, so the batch is accounted dropped — never
  // silently half-counted as quarantined.
  EXPECT_EQ(stats.batches_quarantined, 0u);
  EXPECT_EQ(stats.mutations_quarantined, 0u);
  EXPECT_EQ(stats.mutations_dropped, poison.size());
  EXPECT_EQ(driver.quarantined_batches(), 0u);
  // The next reject (injector disarmed) parks normally.
  EXPECT_EQ(driver.IngestBatch(poison), 0u);
  EXPECT_EQ(driver.quarantined_batches(), 1u);
}

// ----- ReplayQuarantine: fix-up equivalence ----------------------------------

// Poisoned copies of real batches (every vertex id offset out of range) are
// quarantined, fixed up (offset removed), and replayed. The result must be
// bitwise-identical to a reference that applies the valid stream followed by
// the repaired batches — i.e. a replayed batch is indistinguishable from a
// batch that was never poisoned.
TEST(ReplayQuarantineTest, FixupEquivalenceBitwise) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir quarantine_dir;
  const EdgeList full = GenerateRmat(600, 5000, {.seed = 41});
  const StreamSplit split = SplitForStreaming(full, 0.5, 42);
  const std::vector<MutationBatch> batches = MakeBatches(split, 10, 80, 43);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  MutableGraph ref_graph(split.initial);
  GraphBoltEngine<PageRank> reference(&ref_graph, PageRank{});
  engine.InitialCompute();
  reference.InitialCompute();

  const VertexId max_id = full.num_vertices() * 4;
  const VertexId offset = max_id + 1000;
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.batch_size = 1u << 20,
                .flush_interval_seconds = 3600.0,
                .coalesce = false,
                .quarantine_dir = quarantine_dir.path(),
                .admission = {.max_vertex_id = max_id}});

  // Batches 0..6 are the valid stream; 7..9 arrive poisoned.
  MutationBatch repaired_concat;
  for (size_t i = 0; i < batches.size(); ++i) {
    if (i < 7) {
      ASSERT_EQ(driver.IngestBatch(batches[i]), batches[i].size());
      driver.Flush();
      reference.ApplyMutations(batches[i]);
      continue;
    }
    MutationBatch poisoned = batches[i];
    for (EdgeMutation& m : poisoned) {
      m.src += offset;
      m.dst += offset;
    }
    ASSERT_EQ(driver.IngestBatch(poisoned), 0u);
    repaired_concat.insert(repaired_concat.end(), batches[i].begin(), batches[i].end());
  }
  driver.PrepQuery();
  ASSERT_EQ(driver.quarantined_batches(), 3u);

  const size_t fed = driver.ReplayQuarantine([&](RejectReason reason, MutationBatch& batch) {
    EXPECT_EQ(reason, RejectReason::kVertexOutOfRange);
    for (EdgeMutation& m : batch) {
      m.src -= offset;
      m.dst -= offset;
    }
    return true;
  });
  EXPECT_EQ(fed, 3u);
  driver.Flush();
  driver.PrepQuery();
  // The three repaired batches re-entered through the gutter and flushed as
  // one unit; the reference applies the same concatenation as one batch.
  reference.ApplyMutations(repaired_concat);

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.quarantine_replayed, 3u);
  EXPECT_EQ(stats.quarantine_discarded, 0u);
  EXPECT_EQ(driver.quarantined_batches(), 0u);

  const auto& values = engine.values();
  const auto& want = reference.values();
  ASSERT_EQ(values.size(), want.size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], want[v]) << "vertex " << v;
  }
}

TEST(ReplayQuarantineTest, DiscardAndStillPoisonPaths) {
  ScopedTempDir quarantine_dir;
  MutableGraph graph(GenerateRmat(64, 256, {.seed = 7}));
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.quarantine_dir = quarantine_dir.path(),
                .admission = {.max_vertex_id = 1000}});
  MutationBatch poison_a = {EdgeMutation::Add(5000, 1)};
  MutationBatch poison_b = {EdgeMutation::Add(6000, 2), EdgeMutation::Add(6001, 3)};
  ASSERT_EQ(driver.IngestBatch(poison_a), 0u);
  ASSERT_EQ(driver.IngestBatch(poison_b), 0u);
  ASSERT_EQ(driver.quarantined_batches(), 2u);

  // Discard the first, wave the second through unchanged: still poison, so
  // it re-quarantines instead of reaching the engine.
  size_t calls = 0;
  const size_t fed = driver.ReplayQuarantine(
      [&](RejectReason, MutationBatch&) { return ++calls != 1; });
  EXPECT_EQ(fed, 2u);
  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.quarantine_discarded, 1u);
  EXPECT_EQ(stats.quarantine_replayed, 0u);
  EXPECT_EQ(stats.mutations_dropped, 1u);        // the discarded batch
  EXPECT_EQ(stats.batches_quarantined, 3u);      // 2 originals + 1 re-park
  EXPECT_EQ(driver.quarantined_batches(), 1u);   // only the still-poison one
  EXPECT_EQ(stats.mutations_enqueued, 0u);       // nothing ever reached the gutter
}

// ----- Stall watchdog drives Recover() automatically -------------------------

TEST(WatchdogDriver, InjectedStallAutoRecoversBitwise) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir ckpt_dir;
  const EdgeList full = GenerateRmat(600, 5000, {.seed = 61});
  const StreamSplit split = SplitForStreaming(full, 0.5, 62);
  const std::vector<MutationBatch> batches = MakeBatches(split, 10, 80, 63);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  MutableGraph ref_graph(split.initial);
  GraphBoltEngine<PageRank> reference(&ref_graph, PageRank{});
  engine.InitialCompute();
  reference.InitialCompute();

  FaultInjector injector(/*seed=*/0x57a11);
  Checkpointer<GraphBoltEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 3}, &injector);
  StreamDriver<GraphBoltEngine<PageRank>> driver(
      &engine, {.batch_size = 1u << 20,
                .flush_interval_seconds = 3600.0,
                .coalesce = false,
                .checkpointer = &checkpointer,
                .fault_injector = &injector,
                .watchdog_stall_seconds = 0.3,
                .watchdog_poll_seconds = 0.02});
  ASSERT_TRUE(driver.CheckpointNow());
  injector.ArmOnce(FaultSite::kStageStall, 5);  // the 5th apply hangs

  for (const MutationBatch& batch : batches) {
    ASSERT_TRUE(BarrierOnHealthy(driver));  // wait out any in-flight recovery
    ASSERT_EQ(driver.IngestBatch(batch), batch.size());
    driver.Flush();
    reference.ApplyMutations(batch);
    ASSERT_TRUE(BarrierOnHealthy(driver));  // batch-at-a-time: deterministic order
  }
  ASSERT_TRUE(BarrierOnHealthy(driver));

  EXPECT_GE(injector.fired(FaultSite::kStageStall), 1u);
  const EngineStats stats = driver.stats();
  EXPECT_GE(stats.stalls_detected, 1u);
  EXPECT_GE(stats.watchdog_recoveries, 1u);
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_TRUE(driver.healthy());  // self-recovered: the test never called Recover
  EXPECT_EQ(stats.mutations_dropped, 0u);

  // The stalled batch was shed durably and replayed in order, so the result
  // is bitwise-identical to the never-stalled reference.
  const auto& values = engine.values();
  const auto& want = reference.values();
  ASSERT_EQ(values.size(), want.size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], want[v]) << "vertex " << v;
  }
}

// ----- kShedOldest: deterministic eviction, nothing lost ---------------------

// Parks the worker on an injected stall (no watchdog) so the queue state is
// fully deterministic: with capacity 1, flushing B, C, D evicts B then C
// into the shed log. Recovery releases the worker (which sheds its in-hand
// batch) and replays everything, so the final state matches a run that
// never shed. Addition-only + ResetEngine keeps the comparison exact under
// the reordering that shedding introduces.
TEST(ShedOldest, EvictionsAreDurableAndReplayed) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir ckpt_dir;
  const EdgeList full = GenerateRmat(500, 4000, {.seed = 71});
  StreamSplit split = SplitForStreaming(full, 0.5, 72);
  const std::vector<MutationBatch> chunks =
      AdditionChunks(split.held_back, (split.held_back.size() + 3) / 4);
  ASSERT_EQ(chunks.size(), 4u);  // A, B, C, D

  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultInjector injector(/*seed=*/0x01d);
  Checkpointer<ResetEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 0}, &injector);
  using Driver = StreamDriver<ResetEngine<PageRank>>;
  Driver driver(&engine, {.batch_size = 1u << 20,
                          .flush_interval_seconds = 3600.0,
                          .max_pending_batches = 1,
                          .overflow = Driver::OverflowPolicy::kShedOldest,
                          .coalesce = false,
                          .checkpointer = &checkpointer,
                          .fault_injector = &injector});
  ASSERT_TRUE(driver.CheckpointNow());
  injector.ArmOnce(FaultSite::kStageStall, 1);

  ASSERT_EQ(driver.IngestBatch(chunks[0]), chunks[0].size());  // A
  driver.Flush();
  // Wait until the worker is parked inside A's apply.
  for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
    std::this_thread::sleep_for(kTick);
  }
  ASSERT_GE(injector.fired(FaultSite::kStageStall), 1u);

  ASSERT_EQ(driver.IngestBatch(chunks[1]), chunks[1].size());  // B -> queued
  driver.Flush();
  ASSERT_EQ(driver.IngestBatch(chunks[2]), chunks[2].size());  // C evicts B
  driver.Flush();
  ASSERT_EQ(driver.IngestBatch(chunks[3]), chunks[3].size());  // D evicts C
  driver.Flush();
  EXPECT_EQ(driver.stats().shed_oldest_evictions, 2u);
  EXPECT_GT(driver.stats().mutations_shed_to_wal, 0u);

  // Recovery releases the parked worker; its in-hand batch is shed too, and
  // the replay applies D (preserved) then B, C, A from the shed log.
  ASSERT_TRUE(driver.Recover());
  driver.PrepQuery();
  EXPECT_TRUE(driver.healthy());

  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.shed_oldest_evictions, 2u);
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_GE(stats.shed_batches_replayed, 3u);  // B, C, and the parked A

  MutableGraph final_graph(full);
  ResetEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  const auto& values = engine.values();
  const auto& want = fresh.values();
  ASSERT_EQ(values.size(), want.size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], want[v]) << "vertex " << v;
  }
}

// ----- kDegrade: queries serve the last snapshot under overload --------------

TEST(Degrade, ServesSnapshotUnderPressureThenSelfClears) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir ckpt_dir;
  const EdgeList full = GenerateRmat(500, 4000, {.seed = 81});
  StreamSplit split = SplitForStreaming(full, 0.5, 82);
  // Reserve the last held-back edge as the post-recovery nudge batch.
  ASSERT_GT(split.held_back.size(), 8u);
  const Edge nudge_edge = split.held_back.back();
  split.held_back.pop_back();
  const std::vector<MutationBatch> chunks =
      AdditionChunks(split.held_back, (split.held_back.size() + 3) / 4);
  ASSERT_EQ(chunks.size(), 4u);

  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultInjector injector(/*seed=*/0xde9);
  Checkpointer<ResetEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 0}, &injector);
  using Driver = StreamDriver<ResetEngine<PageRank>>;
  // Zero thresholds: any queued work while the EWMA is warm counts as
  // pressure, and pressure clears exactly when the queue is empty — the
  // hysteresis itself is deterministic.
  Driver driver(&engine, {.batch_size = 1u << 20,
                          .flush_interval_seconds = 3600.0,
                          .max_pending_batches = 1,
                          .overflow = Driver::OverflowPolicy::kDegrade,
                          .coalesce = false,
                          .checkpointer = &checkpointer,
                          .fault_injector = &injector,
                          .governor = {.degrade_pressure_seconds = 0.0,
                                       .recover_pressure_seconds = 0.0}});
  ASSERT_TRUE(driver.CheckpointNow());

  // Warm the latency EWMA with one normally-applied batch.
  ASSERT_EQ(driver.IngestBatch(chunks[0]), chunks[0].size());
  driver.Flush();
  driver.PrepQuery();
  ASSERT_GT(driver.stats().apply_ewma_seconds, 0.0);

  // Park the worker, then overfill: chunk 2 queues, chunk 3 coalesces in
  // the gutter (the kDegrade overflow path) instead of blocking.
  injector.ArmOnce(FaultSite::kStageStall, 1);
  ASSERT_EQ(driver.IngestBatch(chunks[1]), chunks[1].size());
  driver.Flush();
  for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
    std::this_thread::sleep_for(kTick);
  }
  ASSERT_GE(injector.fired(FaultSite::kStageStall), 1u);
  ASSERT_EQ(driver.IngestBatch(chunks[2]), chunks[2].size());
  driver.Flush();
  ASSERT_EQ(driver.IngestBatch(chunks[3]), chunks[3].size());
  driver.Flush();

  EXPECT_TRUE(driver.degraded());
  EXPECT_EQ(driver.pending_mutations(), chunks[3].size());  // parked in the gutter
  // A degraded query returns immediately with the last consistent snapshot
  // instead of blocking on a barrier the stalled worker can never clear.
  Timer wall;
  EXPECT_TRUE(driver.PrepQuery());
  EXPECT_LT(wall.Seconds(), 0.2);
  EXPECT_GE(driver.stats().degraded_queries, 1u);
  EXPECT_GE(driver.stats().degraded_entries, 1u);

  // Recovery releases the worker; the nudge batch gives the governor an
  // apply with an empty queue behind it, which clears the degraded flag.
  ASSERT_TRUE(driver.Recover());
  ASSERT_TRUE(driver.Ingest(EdgeMutation::Add(nudge_edge.src, nudge_edge.dst,
                                              nudge_edge.weight)));
  driver.Flush();
  for (int i = 0; i < 500 && driver.degraded(); ++i) {
    std::this_thread::sleep_for(kTick);
  }
  EXPECT_FALSE(driver.degraded());
  driver.PrepQuery();
  EXPECT_EQ(driver.stats().mutations_dropped, 0u);

  MutableGraph final_graph(full);
  ResetEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  const auto& values = engine.values();
  const auto& want = fresh.values();
  ASSERT_EQ(values.size(), want.size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], want[v]) << "vertex " << v;
  }
}

// ----- The acceptance torture test -------------------------------------------

// Poison batches, 4x overload (no pacing against a capacity-2 queue), and
// one injected stage stall, all in one run with watchdog auto-recovery on.
// Requirements: zero crashes, healthy() self-recovers, every rejected batch
// is accounted for in the dead-letter WAL, and the final result is
// bitwise-identical to a from-scratch run over the admitted stream.
TEST(TortureSentinel, PoisonOverloadStallZeroLoss) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir ckpt_dir;
  ScopedTempDir quarantine_dir;
  const EdgeList full = GenerateRmat(1000, 9000, {.seed = 91});
  const StreamSplit split = SplitForStreaming(full, 0.5, 92);
  const std::vector<MutationBatch> valid = AdditionChunks(split.held_back, 48);
  ASSERT_GT(valid.size(), 30u);

  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultInjector injector(/*seed=*/0x70b7);
  Checkpointer<ResetEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 8}, &injector);
  using Driver = StreamDriver<ResetEngine<PageRank>>;
  Driver driver(&engine, {.batch_size = 1u << 20,
                          .flush_interval_seconds = 3600.0,
                          .max_pending_batches = 2,
                          .overflow = Driver::OverflowPolicy::kShedToWal,
                          .coalesce = false,
                          .checkpointer = &checkpointer,
                          .fault_injector = &injector,
                          .quarantine_dir = quarantine_dir.path(),
                          .admission = {.max_vertex_id = 1u << 20},
                          .watchdog_stall_seconds = 0.5,
                          .watchdog_poll_seconds = 0.02});
  ASSERT_TRUE(driver.CheckpointNow());
  // Arm low: under kShedToWal the unpaced flood sheds most batches before
  // they ever reach the apply stage, and shed batches replay only at the
  // barrier — so on a loaded machine a high hit count may never be reached
  // before the post-loop check. The 2nd apply is still mid-flood.
  injector.ArmOnce(FaultSite::kStageStall, 2);

  const float nan = std::numeric_limits<float>::quiet_NaN();
  MutableGraph ref_graph(split.initial);
  size_t poison_batches = 0;
  size_t poison_mutations = 0;
  uint64_t accepted_total = 0;
  uint64_t offered_total = 0;
  for (size_t i = 0; i < valid.size(); ++i) {
    if (i % 7 == 3) {
      // Alternate poison flavors; all must bounce to quarantine even while
      // the pipeline is overloaded or mid-recovery.
      MutationBatch poison;
      if (i % 14 == 3) {
        for (int k = 0; k < 5; ++k) {
          poison.push_back(EdgeMutation::Add(1, 2 + k, nan));
        }
      } else {
        for (int k = 0; k < 5; ++k) {
          poison.push_back(EdgeMutation::Add((2u << 20) + k, 1));
        }
      }
      ASSERT_EQ(driver.IngestBatch(poison), 0u);
      ++poison_batches;
      poison_mutations += poison.size();
    }
    // No pacing: ingestion runs far ahead of the worker, so the queue
    // overflows and kShedToWal sheds durably. During the auto-recovery
    // window IngestBatch may accept only a prefix; the reference applies
    // exactly what was accepted.
    const size_t accepted = driver.IngestBatch(valid[i]);
    accepted_total += accepted;
    offered_total += valid[i].size();
    if (accepted > 0) {
      ref_graph.ApplyBatch(
          MutationBatch(valid[i].begin(), valid[i].begin() + accepted));
    }
    driver.Flush();
  }

  // The stall must have fired and the watchdog must have healed the driver
  // without any help from the test.
  for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
    std::this_thread::sleep_for(kTick);
  }
  EXPECT_GE(injector.fired(FaultSite::kStageStall), 1u);
  ASSERT_TRUE(AwaitHealthy(driver));
  ASSERT_TRUE(BarrierOnHealthy(driver));

  const EngineStats stats = driver.stats();
  EXPECT_TRUE(driver.healthy());
  EXPECT_GE(stats.stalls_detected, 1u);
  EXPECT_GE(stats.watchdog_recoveries, 1u);
  EXPECT_GT(stats.mutations_shed_to_wal, 0u) << "overload never engaged the shed path";

  // Exact accounting: every poison batch is in the dead-letter WAL, every
  // accepted mutation reached the engine, and the only losses are the
  // explicitly-counted recovery-window rejections.
  EXPECT_EQ(stats.batches_quarantined, poison_batches);
  EXPECT_EQ(stats.mutations_quarantined, poison_mutations);
  EXPECT_EQ(driver.quarantined_batches(), poison_batches);
  size_t parked = 0;
  driver.quarantine()->ForEach([&](RejectReason reason, MutationBatch&& batch) {
    ++parked;
    EXPECT_TRUE(reason == RejectReason::kNonFiniteWeight ||
                reason == RejectReason::kVertexOutOfRange);
    EXPECT_EQ(batch.size(), 5u);
  });
  EXPECT_EQ(parked, poison_batches);
  EXPECT_EQ(stats.mutations_enqueued, accepted_total);
  EXPECT_EQ(stats.mutations_dropped, offered_total - accepted_total);

  // From-scratch run over the admitted stream: bitwise-identical.
  EXPECT_EQ(graph.num_edges(), ref_graph.num_edges());
  ResetEngine<PageRank> fresh(&ref_graph, PageRank{});
  fresh.InitialCompute();
  const auto& values = engine.values();
  const auto& want = fresh.values();
  ASSERT_EQ(values.size(), want.size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], want[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace graphbolt
