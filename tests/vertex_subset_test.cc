// Unit tests for VertexSubset / FrontierBuilder and vertex contexts.
#include <gtest/gtest.h>

#include "src/core/algorithm.h"
#include "src/engine/vertex_subset.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/parallel_for.h"

namespace graphbolt {
namespace {

TEST(VertexSubset, EmptyByDefault) {
  VertexSubset subset(100);
  EXPECT_TRUE(subset.Empty());
  EXPECT_EQ(subset.size(), 0u);
  EXPECT_EQ(subset.universe(), 100u);
}

TEST(VertexSubset, AllContainsEveryVertex) {
  VertexSubset subset = VertexSubset::All(10);
  EXPECT_EQ(subset.size(), 10u);
  for (VertexId v = 0; v < 10; ++v) {
    EXPECT_EQ(subset.members()[v], v);
  }
}

TEST(VertexSubset, NormalizeSortsAndDedupes) {
  VertexSubset subset(10);
  subset.Add(5);
  subset.Add(2);
  subset.Add(5);
  subset.Add(9);
  subset.Normalize();
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.members()[0], 2u);
  EXPECT_EQ(subset.members()[1], 5u);
  EXPECT_EQ(subset.members()[2], 9u);
}

TEST(VertexSubset, DenseViewReflectsMembers) {
  VertexSubset subset(128);
  subset.Add(0);
  subset.Add(64);
  subset.Add(127);
  const AtomicBitset& dense = subset.Dense();
  EXPECT_TRUE(dense.Test(0));
  EXPECT_TRUE(dense.Test(64));
  EXPECT_TRUE(dense.Test(127));
  EXPECT_FALSE(dense.Test(1));
  EXPECT_EQ(dense.Count(), 3u);
}

TEST(FrontierBuilder, ClaimIsExactlyOnce) {
  FrontierBuilder builder(1000);
  EXPECT_TRUE(builder.Claim(5));
  EXPECT_FALSE(builder.Claim(5));
  EXPECT_TRUE(builder.Contains(5));
  EXPECT_FALSE(builder.Contains(6));
}

TEST(FrontierBuilder, TakeCollectsSorted) {
  FrontierBuilder builder(100);
  builder.Claim(42);
  builder.Claim(7);
  builder.Claim(99);
  const VertexSubset subset = builder.Take();
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.members()[0], 7u);
  EXPECT_EQ(subset.members()[1], 42u);
  EXPECT_EQ(subset.members()[2], 99u);
}

TEST(FrontierBuilder, ConcurrentClaimsAreExact) {
  FrontierBuilder builder(50000);
  std::atomic<int> wins{0};
  ParallelFor(0, 200000, [&](size_t i) {
    if (builder.Claim(static_cast<VertexId>(i % 50000))) {
      wins.fetch_add(1);
    }
  }, /*grain=*/128);
  EXPECT_EQ(wins.load(), 50000);
  EXPECT_EQ(builder.Take().size(), 50000u);
}

TEST(VertexContext, DegreesAndWeightSums) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 2.0f);
  list.Add(0, 2, 3.0f);
  list.Add(2, 1, 4.0f);
  MutableGraph graph(std::move(list));
  const auto contexts = ComputeVertexContexts(graph);
  EXPECT_EQ(contexts[0].out_degree, 2u);
  EXPECT_EQ(contexts[0].in_degree, 0u);
  EXPECT_DOUBLE_EQ(contexts[0].out_weight_sum, 5.0);
  EXPECT_EQ(contexts[1].in_degree, 2u);
  EXPECT_DOUBLE_EQ(contexts[1].in_weight_sum, 6.0);
  EXPECT_EQ(contexts[2].out_degree, 1u);
  EXPECT_DOUBLE_EQ(contexts[2].in_weight_sum, 3.0);
}

TEST(VertexContext, ChangesTrackMutations) {
  EdgeList list = GenerateRmat(50, 300, {.seed = 60});
  MutableGraph graph(list);
  const auto before = ComputeVertexContexts(graph);
  const AppliedMutations applied = graph.ApplyBatch({EdgeMutation::Add(0, 1)});
  const auto after = ComputeVertexContexts(graph);
  if (!applied.Empty()) {
    EXPECT_NE(before[0].out_degree, after[0].out_degree);
    EXPECT_NE(before[1].in_degree, after[1].in_degree);
  }
  // Untouched vertices keep identical contexts.
  for (VertexId v = 2; v < graph.num_vertices(); ++v) {
    EXPECT_TRUE(before[v] == after[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace graphbolt
