// Tests for the Ligra-style edgeMap / vertexMap primitives, including a
// classic frontier BFS written directly against them.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/engine/edge_map.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/atomics.h"

namespace graphbolt {
namespace {

TEST(EdgeMapSparse, VisitsFrontierOutEdges) {
  // Star graph: hub 0 <-> spokes.
  MutableGraph graph(GenerateStar(6));
  VertexSubset frontier(graph.num_vertices());
  frontier.Add(0);
  std::atomic<int> visited{0};
  const VertexSubset next = EdgeMapSparse(graph, frontier, [&](VertexId u, VertexId v, Weight) {
    EXPECT_EQ(u, 0u);
    visited.fetch_add(1);
    return v % 2 == 1;  // keep odd destinations
  });
  EXPECT_EQ(visited.load(), 5);
  ASSERT_EQ(next.size(), 3u);  // 1, 3, 5
  EXPECT_EQ(next.members()[0], 1u);
  EXPECT_EQ(next.members()[1], 3u);
  EXPECT_EQ(next.members()[2], 5u);
}

TEST(EdgeMapDense, MatchesSparseResult) {
  MutableGraph graph(GenerateRmat(500, 4000, {.seed = 210}));
  VertexSubset frontier(graph.num_vertices());
  for (VertexId v = 0; v < 50; ++v) {
    frontier.Add(v * 7 % graph.num_vertices());
  }
  frontier.Normalize();
  auto keep_even = [](VertexId, VertexId v, Weight) { return v % 2 == 0; };
  const VertexSubset sparse = EdgeMapSparse(graph, frontier, keep_even);
  const VertexSubset dense = EdgeMapDense(graph, frontier, keep_even);
  ASSERT_EQ(sparse.size(), dense.size());
  for (size_t i = 0; i < sparse.size(); ++i) {
    EXPECT_EQ(sparse.members()[i], dense.members()[i]);
  }
}

TEST(EdgeMap, DirectionChoiceIsTransparent) {
  MutableGraph graph(GenerateRmat(500, 4000, {.seed = 211}));
  VertexSubset small(graph.num_vertices());
  small.Add(3);
  VertexSubset all = VertexSubset::All(graph.num_vertices());
  auto always = [](VertexId, VertexId, Weight) { return true; };
  // Small frontier goes sparse, full frontier goes dense; results agree
  // with the forced variants either way.
  const VertexSubset a1 = EdgeMap(graph, small, always);
  const VertexSubset a2 = EdgeMapSparse(graph, small, always);
  ASSERT_EQ(a1.size(), a2.size());
  const VertexSubset b1 = EdgeMap(graph, all, always);
  const VertexSubset b2 = EdgeMapDense(graph, all, always);
  ASSERT_EQ(b1.size(), b2.size());
}

// dense_result fuses the Take: a chain of pull-direction maps returning
// dense-only subsets must match the unfused chain exactly, and a dense-only
// subset must still answer members() (lazily materialized, sorted).
TEST(EdgeMap, FusedDenseChainMatchesUnfused) {
  MutableGraph graph(GenerateRmat(500, 4000, {.seed = 213}));
  auto keep_even = [](VertexId, VertexId v, Weight) { return v % 2 == 0; };
  VertexSubset plain = VertexSubset::All(graph.num_vertices());
  VertexSubset fused = VertexSubset::All(graph.num_vertices());
  for (int step = 0; step < 3; ++step) {
    plain = EdgeMapDense(graph, plain, keep_even);
    fused = EdgeMapDense(graph, fused, keep_even, /*dense_result=*/true);
    ASSERT_EQ(plain.size(), fused.size()) << "step " << step;
  }
  ASSERT_EQ(plain.size(), fused.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain.members()[i], fused.members()[i]);
  }
}

// A dense-only subset re-enters the sparse world correctly: Add() and
// Normalize() after lazy materialization behave like a sparse-born subset.
TEST(VertexSubset, DenseOnlySupportsSparseOperations) {
  FrontierBuilder builder(32);
  builder.Claim(3);
  builder.Claim(17);
  VertexSubset subset = builder.TakeDense();
  EXPECT_EQ(subset.size(), 2u);
  EXPECT_TRUE(subset.Dense().Test(17));
  EXPECT_FALSE(subset.Dense().Test(4));
  subset.Add(9);
  subset.Add(3);  // duplicate
  subset.Normalize();
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.members()[0], 3u);
  EXPECT_EQ(subset.members()[1], 9u);
  EXPECT_EQ(subset.members()[2], 17u);
  EXPECT_TRUE(subset.Dense().Test(9));
}

TEST(EdgeMap, EmptyFrontierYieldsEmpty) {
  MutableGraph graph(GenerateChain(10));
  VertexSubset empty(graph.num_vertices());
  const VertexSubset next =
      EdgeMap(graph, empty, [](VertexId, VertexId, Weight) { return true; });
  EXPECT_TRUE(next.Empty());
}

TEST(VertexMap, FiltersMembers) {
  VertexSubset subset(100);
  for (VertexId v = 0; v < 20; ++v) {
    subset.Add(v);
  }
  const VertexSubset kept = VertexMap(subset, [](VertexId v) { return v >= 15; });
  EXPECT_EQ(kept.size(), 5u);
}

TEST(VertexForEach, AppliesSideEffects) {
  VertexSubset subset(64);
  subset.Add(1);
  subset.Add(2);
  subset.Add(3);
  std::atomic<uint32_t> sum{0};
  VertexForEach(subset, [&sum](VertexId v) { sum.fetch_add(v); });
  EXPECT_EQ(sum.load(), 6u);
}

// Classic Ligra BFS written directly on the primitives; checked against the
// engine-computed hop counts.
TEST(EdgeMapIntegration, FrontierBfs) {
  MutableGraph graph(GenerateRmat(800, 6000, {.seed = 212}));
  const VertexId source = 0;

  std::vector<int32_t> depth(graph.num_vertices(), -1);
  depth[source] = 0;
  VertexSubset frontier(graph.num_vertices());
  frontier.Add(source);
  int32_t level = 0;
  while (!frontier.Empty()) {
    ++level;
    const int32_t current = level;
    frontier = EdgeMap(graph, frontier, [&](VertexId, VertexId v, Weight) {
      return AtomicCas(&depth[v], int32_t{-1}, current);
    });
  }

  // Reference: serial BFS.
  std::vector<int32_t> expected(graph.num_vertices(), -1);
  std::vector<VertexId> queue{source};
  expected[source] = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const VertexId u = queue[head];
    for (const VertexId v : graph.OutNeighbors(u)) {
      if (expected[v] == -1) {
        expected[v] = expected[u] + 1;
        queue.push_back(v);
      }
    }
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ASSERT_EQ(depth[v], expected[v]) << "vertex " << v;
  }
}

}  // namespace
}  // namespace graphbolt
