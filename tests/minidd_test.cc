// Tests for the mini differential-dataflow substrate and its PageRank /
// SSSP dataflows (§5.4A comparator).
#include <gtest/gtest.h>

#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/generators.h"
#include "src/minidd/collection.h"
#include "src/minidd/dataflow.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

TEST(EdgeArrangement, BuildsBothDirections) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 2.0f);
  list.Add(0, 2, 3.0f);
  EdgeArrangement arr(list);
  EXPECT_EQ(arr.num_tuples(), 2u);
  EXPECT_EQ(arr.OutTuples(0).size(), 2u);
  EXPECT_EQ(arr.InTuples(1).size(), 1u);
  EXPECT_EQ(arr.InTuples(1)[0].first, 0u);
  EXPECT_FLOAT_EQ(arr.InTuples(1)[0].second, 2.0f);
  EXPECT_TRUE(arr.OutTuples(2).empty());
}

TEST(EdgeArrangement, ApplyDiffsInsertAndRemove) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1);
  EdgeArrangement arr(list);
  const auto touched = arr.ApplyDiffs({{{1, 2, 1.0f}, +1}, {{0, 1, 1.0f}, -1}});
  EXPECT_EQ(arr.num_tuples(), 1u);
  EXPECT_TRUE(arr.OutTuples(0).empty());
  EXPECT_EQ(arr.OutTuples(1).size(), 1u);
  EXPECT_EQ(touched.size(), 3u);  // keys 0, 1, 2
}

TEST(EdgeArrangement, DuplicateInsertIgnored) {
  EdgeList list;
  list.set_num_vertices(2);
  list.Add(0, 1);
  EdgeArrangement arr(list);
  arr.ApplyDiffs({{{0, 1, 1.0f}, +1}});
  EXPECT_EQ(arr.num_tuples(), 1u);
}

TEST(EdgeArrangement, RemoveAbsentIgnored) {
  EdgeList list;
  list.set_num_vertices(2);
  list.Add(0, 1);
  EdgeArrangement arr(list);
  const auto touched = arr.ApplyDiffs({{{1, 0, 1.0f}, -1}});
  EXPECT_TRUE(touched.empty());
  EXPECT_EQ(arr.num_tuples(), 1u);
}

TEST(ToDiffs, ConvertsMutations) {
  const auto diffs = ToDiffs({EdgeMutation::Add(0, 1, 2.0f), EdgeMutation::Delete(1, 2)});
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0].multiplicity, 1);
  EXPECT_EQ(diffs[1].multiplicity, -1);
  EXPECT_EQ(diffs[1].record.src, 1u);
}

TEST(DdPageRank, MatchesGraphBoltInitially) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 140});
  DdPageRank dd(list, 10);
  dd.InitialCompute();
  MutableGraph graph(list);
  LigraEngine<PageRank> reference(&graph, PageRank{});
  reference.InitialCompute();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    ASSERT_NEAR(dd.ranks().at(v), reference.values()[v], 1e-9) << "vertex " << v;
  }
}

TEST(DdPageRank, IncrementalMatchesRestart) {
  EdgeList full = GenerateRmat(400, 3500, {.seed = 141});
  StreamSplit split = SplitForStreaming(full, 0.5, 142);
  DdPageRank dd(split.initial, 10);
  dd.InitialCompute();

  MutableGraph graph(split.initial);
  LigraEngine<PageRank> reference(&graph, PageRank{});
  reference.InitialCompute();

  UpdateStream stream(split.held_back, 143);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(graph, {.size = 30, .add_fraction = 0.6});
    dd.ApplyUpdates(batch);
    reference.ApplyMutations(batch);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      ASSERT_NEAR(dd.ranks().at(v), reference.values()[v], 1e-6)
          << "round " << round << " vertex " << v;
    }
  }
}

TEST(DdSssp, MatchesGraphBoltInitially) {
  EdgeList list = GenerateRmat(400, 3000, {.seed = 144, .assign_random_weights = true});
  DdSssp dd(list, 0);
  dd.InitialCompute();
  MutableGraph graph(list);
  GraphBoltEngine<Sssp> reference(&graph, Sssp(0),
                                  {.max_iterations = 512, .run_to_convergence = true});
  reference.InitialCompute();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto it = dd.distances().find(v);
    const double dd_dist = it == dd.distances().end() ? kUnreachable : it->second;
    const double ref = reference.values()[v];
    if (ref >= kUnreachable) {
      ASSERT_GE(dd_dist, kUnreachable) << "vertex " << v;
    } else {
      ASSERT_NEAR(dd_dist, ref, 1e-6) << "vertex " << v;
    }
  }
}

TEST(DdSssp, IncrementalMatchesReference) {
  EdgeList full = GenerateRmat(300, 2500, {.seed = 145, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 146);
  DdSssp dd(split.initial, 0);
  dd.InitialCompute();

  MutableGraph graph(split.initial);
  UpdateStream stream(split.held_back, 147);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(graph, {.size = 20, .add_fraction = 0.5});
    dd.ApplyUpdates(batch);
    graph.ApplyBatch(batch);
    MutableGraph fresh(graph.ToEdgeList());
    GraphBoltEngine<Sssp> reference(&fresh, Sssp(0),
                                    {.max_iterations = 512, .run_to_convergence = true});
    reference.InitialCompute();
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      const auto it = dd.distances().find(v);
      const double dd_dist = it == dd.distances().end() ? kUnreachable : it->second;
      const double ref = reference.values()[v];
      if (ref >= kUnreachable) {
        ASSERT_GE(dd_dist, kUnreachable) << "round " << round << " vertex " << v;
      } else {
        ASSERT_NEAR(dd_dist, ref, 1e-6) << "round " << round << " vertex " << v;
      }
    }
  }
}

}  // namespace
}  // namespace graphbolt
