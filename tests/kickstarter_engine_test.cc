// Tests for the generalized KickStarterEngine across its trait instances,
// plus MultiSourceReach (the integer-bitmask aggregation) on GraphBolt.
#include <gtest/gtest.h>

#include "src/algorithms/connected_components.h"
#include "src/algorithms/multi_source_reach.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/widest_path.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/generators.h"
#include "src/kickstarter/kickstarter_engine.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

EdgeList Symmetrize(EdgeList list) {
  const size_t original = list.num_edges();
  for (size_t i = 0; i < original; ++i) {
    const Edge e = list.edges()[i];
    list.edges().push_back({e.dst, e.src, e.weight});
  }
  list.SortAndDeduplicate();
  return list;
}

// ----- KickStarterEngine<KsSsspTraits> matches the GraphBolt reference ---------

TEST(KickStarterEngineSssp, StreamingMatchesReference) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 220, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 221);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  KickStarterEngine<KsSsspTraits> ks(&g1, KsSsspTraits(0));
  LigraEngine<Sssp> reference(&g2, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
  ks.InitialCompute();
  reference.InitialCompute();
  UpdateStream stream(split.held_back, 222);
  for (int round = 0; round < 6; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.5});
    ks.ApplyMutations(batch);
    reference.ApplyMutations(batch);
    ASSERT_LT(MaxGap(ks.values(), reference.values()), 1e-9) << "round " << round;
  }
}

TEST(KickStarterEngineSssp, BfsModeViaUnitWeights) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 9.0f);
  list.Add(1, 2, 9.0f);
  MutableGraph graph(std::move(list));
  KickStarterEngine<KsSsspTraits> ks(&graph, KsSsspTraits(0, /*use_weights=*/false));
  ks.InitialCompute();
  EXPECT_DOUBLE_EQ(ks.values()[2], 2.0);
}

// ----- Connected components traits ---------------------------------------------

TEST(KickStarterEngineComponents, StreamingMatchesReference) {
  EdgeList full = Symmetrize(GenerateRmat(500, 3000, {.seed = 223}));
  StreamSplit split = SplitForStreaming(full, 0.5, 224);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  KickStarterEngine<KsComponentsTraits> ks(&g1, KsComponentsTraits{});
  LigraEngine<ConnectedComponents> reference(
      &g2, ConnectedComponents{}, {.max_iterations = 256, .run_to_convergence = true});
  ks.InitialCompute();
  reference.InitialCompute();
  UpdateStream stream(split.held_back, 225);
  for (int round = 0; round < 6; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.5});
    ks.ApplyMutations(batch);
    reference.ApplyMutations(batch);
    ASSERT_LT(MaxGap(ks.values(), reference.values()), 1e-9) << "round " << round;
  }
}

TEST(KickStarterEngineComponents, SplitAndMerge) {
  EdgeList list;
  list.set_num_vertices(4);
  list.Add(0, 1);
  list.Add(1, 0);
  list.Add(1, 2);
  list.Add(2, 1);
  list.Add(2, 3);
  list.Add(3, 2);
  MutableGraph graph(std::move(list));
  KickStarterEngine<KsComponentsTraits> ks(&graph, KsComponentsTraits{});
  ks.InitialCompute();
  EXPECT_DOUBLE_EQ(ks.values()[3], 0.0);
  ks.ApplyMutations({EdgeMutation::Delete(1, 2), EdgeMutation::Delete(2, 1)});
  EXPECT_DOUBLE_EQ(ks.values()[2], 2.0);
  EXPECT_DOUBLE_EQ(ks.values()[3], 2.0);
  ks.ApplyMutations({EdgeMutation::Add(0, 2), EdgeMutation::Add(2, 0)});
  EXPECT_DOUBLE_EQ(ks.values()[3], 0.0);
}

// ----- Widest path traits -------------------------------------------------------

TEST(KickStarterEngineWidest, StreamingMatchesReference) {
  EdgeList full = GenerateRmat(500, 4000, {.seed = 226, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 227);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  KickStarterEngine<KsWidestPathTraits> ks(&g1, KsWidestPathTraits(0));
  LigraEngine<WidestPath> reference(&g2, WidestPath(0),
                                    {.max_iterations = 256, .run_to_convergence = true});
  ks.InitialCompute();
  reference.InitialCompute();
  UpdateStream stream(split.held_back, 228);
  for (int round = 0; round < 6; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.5});
    ks.ApplyMutations(batch);
    reference.ApplyMutations(batch);
    ASSERT_LT(MaxGap(ks.values(), reference.values()), 1e-9) << "round " << round;
  }
}

// ----- Multi-source reachability on GraphBolt -----------------------------------

TEST(MultiSourceReach, MasksOnChain) {
  MutableGraph graph(GenerateChain(5));
  MultiSourceReach algo({0, 2}, graph.num_vertices());
  GraphBoltEngine<MultiSourceReach> engine(&graph, algo,
                                           {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_EQ(engine.values()[0], 0b01u);
  EXPECT_EQ(engine.values()[1], 0b01u);
  EXPECT_EQ(engine.values()[2], 0b11u);  // reached by 0, is source 1
  EXPECT_EQ(engine.values()[4], 0b11u);
}

TEST(MultiSourceReach, DeletionRemovesReachability) {
  MutableGraph graph(GenerateChain(4));
  MultiSourceReach algo({0}, graph.num_vertices());
  GraphBoltEngine<MultiSourceReach> engine(&graph, algo,
                                           {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_EQ(engine.values()[3], 1u);
  engine.ApplyMutations({EdgeMutation::Delete(1, 2)});
  EXPECT_EQ(engine.values()[2], 0u);
  EXPECT_EQ(engine.values()[3], 0u);
  engine.ApplyMutations({EdgeMutation::Add(0, 2)});
  EXPECT_EQ(engine.values()[3], 1u);
}

TEST(MultiSourceReach, StreamingMatchesRestart) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 229});
  StreamSplit split = SplitForStreaming(full, 0.5, 230);
  MultiSourceReach algo({0, 7, 13, 42}, full.num_vertices());
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<MultiSourceReach> bolt(&g1, algo,
                                         {.max_iterations = 256, .run_to_convergence = true});
  LigraEngine<MultiSourceReach> ligra(&g2, algo,
                                      {.max_iterations = 256, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 231);
  for (int round = 0; round < 6; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.5});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    for (VertexId v = 0; v < g1.num_vertices(); ++v) {
      ASSERT_EQ(bolt.values()[v], ligra.values()[v]) << "round " << round << " vertex " << v;
    }
  }
}

TEST(MultiSourceReach, RejectsTooManySources) {
  std::vector<VertexId> sources(65);
  for (VertexId s = 0; s < 65; ++s) {
    sources[s] = s;
  }
  EXPECT_DEATH(MultiSourceReach(sources, 100), "at most 64 sources");
}

}  // namespace
}  // namespace graphbolt
