// Async delta-accumulative tier (INTERNALS §14): the Maiter-style
// barrier-free execution mode that eligible engines flip into under
// kDegrade overload.
//
// Three layers under test:
//   1. Concept layer — only decomposable aggregations admit the async API
//      (compile-time static_asserts on AsyncDeltaEngine).
//   2. Engine layer — differential convergence: the async fixed point on a
//      seeded mutation stream matches a run-to-convergence BSP engine on
//      the same final graph within 1e-9 relative error, for PageRank, CoEM
//      and Label Propagation; and ExitAsyncReconcile restores state
//      bitwise-identical (==) to a fresh InitialCompute (one pool thread,
//      so parallel reduction order is deterministic).
//   3. Driver layer — under kDegrade pressure with --async-mode
//      degrade-only, StreamDriver flips the engine async, serves degraded
//      queries from continuously-updating values (async_fresh_queries and
//      async_applies progress across successive samples), then self-clears
//      through one reconciling barrier once pressure recedes. A sharded
//      smoke run proves the same protocol on ShardedDriver lanes.
//
// Conventions follow sentinel_test.cc: one pool thread, pre-generated
// streams, generous poll loops around timing-dependent flags. The driver
// floods use addition-only distinct-edge chunks so the final graph is
// independent of how the degrade gutter re-batches overflow.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/algorithms/coem.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/core/streaming_engine.h"
#include "src/driver/stream_driver.h"
#include "src/engine/reset_engine.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/thread_pool.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "src/stream/update_stream.h"
#include "src/util/timer.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

constexpr auto kTick = std::chrono::milliseconds(10);

// ----- Concept layer: eligibility is decided by the aggregation kind ---------

static_assert(AsyncDeltaEngine<GraphBoltEngine<PageRank>>);
static_assert(AsyncDeltaEngine<GraphBoltEngine<CoEM>>);
static_assert(AsyncDeltaEngine<GraphBoltEngine<LabelPropagation<2>>>);
static_assert(GraphBoltEngine<PageRank>::kAsyncEligible);
// Min/max aggregations are non-decomposable: no per-edge retraction exists,
// so the delta-accumulative invariant cannot be patched in place.
static_assert(!GraphBoltEngine<Sssp>::kAsyncEligible);
static_assert(!AsyncDeltaEngine<GraphBoltEngine<Sssp>>);
// ResetEngine recomputes from scratch; it never exposes the async surface.
static_assert(!AsyncDeltaEngine<ResetEngine<PageRank>>);

// ----- Helpers ---------------------------------------------------------------

// Pre-generates `count` mixed add/remove batches against an evolving shadow
// graph (the sentinel_test / fault_recovery_test convention). The shadow is
// left at the stream's final state for reference-engine construction.
std::vector<MutationBatch> MakeBatches(MutableGraph* shadow, const std::vector<Edge>& held_back,
                                       size_t count, size_t batch_size, uint64_t seed) {
  UpdateStream stream(held_back, seed);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < count; ++i) {
    MutationBatch batch = stream.NextBatch(*shadow, {.size = batch_size, .add_fraction = 0.6});
    shadow->ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Chops held-back additions into distinct-edge, addition-only batches; the
// final graph is then independent of batch boundaries and apply order.
std::vector<MutationBatch> AdditionChunks(const std::vector<Edge>& edges, size_t chunk) {
  std::vector<MutationBatch> out;
  for (size_t i = 0; i < edges.size(); i += chunk) {
    MutationBatch batch;
    for (size_t j = i; j < std::min(i + chunk, edges.size()); ++j) {
      batch.push_back(EdgeMutation::Add(edges[j].src, edges[j].dst, edges[j].weight));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

// Drives the engine's async rounds until the residual reaches (near) zero.
template <typename Engine>
double StepToFixedPoint(Engine* engine, double target = 1e-12, int max_rounds = 200000) {
  double residual = engine->AsyncResidual();
  for (int i = 0; i < max_rounds && residual > target; ++i) {
    residual = engine->AsyncStep(/*budget=*/0);  // 0 = unbounded round
  }
  return residual;
}

// Relative closeness: |got - want| <= rel * max(1, |want|) per vertex. The
// max(1, ·) floor makes the bound absolute for the sub-unit values all three
// algorithms produce, which is the strict reading of "1e-9 relative".
template <typename Value>
void ExpectRelativeClose(const std::vector<Value>& got, const std::vector<Value>& want,
                         double rel) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < got.size(); ++v) {
    const double gap = ValueGap(got[v], want[v]);
    const double scale = std::max(1.0, ValueGap(want[v], Value{}));
    EXPECT_LE(gap, rel * scale) << "vertex " << v;
  }
}

// ----- Engine layer: differential convergence --------------------------------

// Shared body: apply a seeded mixed stream barrier-free in async mode, run
// propagation rounds to the fixed point, and compare against a BSP engine
// run to convergence on the same final graph. The BSP reference uses the
// same tight algorithm tolerance (1e-12) so both sides quantify the *true*
// fixed point, not a truncated 10-iteration front.
template <typename Algo>
void RunAsyncConvergence(Algo algo, uint64_t graph_seed) {
  const EdgeList full = GenerateRmat(400, 3200, {.seed = graph_seed});
  const StreamSplit split = SplitForStreaming(full, 0.6, graph_seed + 1);

  MutableGraph shadow(split.initial);
  const std::vector<MutationBatch> batches =
      MakeBatches(&shadow, split.held_back, /*count=*/12, /*batch_size=*/64, graph_seed + 2);

  MutableGraph graph(split.initial);
  GraphBoltEngine<Algo> engine(&graph, algo);
  engine.InitialCompute();

  engine.EnterAsyncMode();
  ASSERT_TRUE(engine.async_mode());
  for (const MutationBatch& batch : batches) {
    engine.AsyncApplyMutations(batch);
  }
  const double residual = StepToFixedPoint(&engine);
  EXPECT_LE(residual, 1e-12);
  EXPECT_LE(engine.AsyncResidual(), 1e-12);

  // Reference: BSP run to convergence on the stream's final graph.
  MutableGraph final_graph(shadow.ToEdgeList());
  GraphBoltEngine<Algo> reference(&final_graph, algo, {.max_iterations = 100000, .run_to_convergence = true});
  reference.InitialCompute();

  ExpectRelativeClose(engine.values(), reference.values(), 1e-9);
}

TEST(AsyncConvergence, PageRankMatchesBspFixedPoint) {
  ThreadPool::SetNumThreads(2);
  RunAsyncConvergence(PageRank(0.85, /*tolerance=*/1e-12), /*graph_seed=*/211);
}

TEST(AsyncConvergence, CoEMMatchesBspFixedPoint) {
  ThreadPool::SetNumThreads(2);
  RunAsyncConvergence(CoEM(400, /*seed_fraction=*/0.05, /*seed=*/11, /*tolerance=*/1e-12),
                      /*graph_seed=*/221);
}

TEST(AsyncConvergence, LabelPropagationMatchesBspFixedPoint) {
  ThreadPool::SetNumThreads(2);
  RunAsyncConvergence(
      LabelPropagation<2>(400, /*seed_fraction=*/0.1, /*seed=*/7, /*tolerance=*/1e-12),
      /*graph_seed=*/231);
}

// Deletion-heavy stream: retraction patches (Phase A at old contexts) are
// exercised hard; the invariant must survive edges vanishing under live
// aggregates.
TEST(AsyncConvergence, PageRankSurvivesDeletionHeavyStream) {
  ThreadPool::SetNumThreads(2);
  const EdgeList full = GenerateRmat(300, 2400, {.seed = 241});
  const StreamSplit split = SplitForStreaming(full, 0.5, 242);

  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, 243);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < 10; ++i) {
    MutationBatch batch = shadow.num_edges() > 200
                              ? stream.NextBatch(shadow, {.size = 48, .add_fraction = 0.3})
                              : stream.NextBatch(shadow, {.size = 48, .add_fraction = 0.8});
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }

  MutableGraph graph(split.initial);
  const PageRank algo(0.85, 1e-12);
  GraphBoltEngine<PageRank> engine(&graph, algo);
  engine.InitialCompute();
  engine.EnterAsyncMode();
  for (const MutationBatch& batch : batches) {
    engine.AsyncApplyMutations(batch);
  }
  EXPECT_LE(StepToFixedPoint(&engine), 1e-12);

  MutableGraph final_graph(shadow.ToEdgeList());
  GraphBoltEngine<PageRank> reference(&final_graph, algo, {.max_iterations = 100000, .run_to_convergence = true});
  reference.InitialCompute();
  ExpectRelativeClose(engine.values(), reference.values(), 1e-9);
}

// ----- Engine layer: the reconciling barrier is bitwise ----------------------

// One pool thread makes every parallel reduction order deterministic, so
// "bitwise-identical to a fresh InitialCompute" is testable with ==. The
// async window deliberately stops short of convergence: reconciliation must
// not depend on the async values having settled.
TEST(AsyncReconcile, RestoresBitwiseBspState) {
  ThreadPool::SetNumThreads(1);
  const EdgeList full = GenerateRmat(350, 2800, {.seed = 251});
  const StreamSplit split = SplitForStreaming(full, 0.6, 252);

  MutableGraph shadow(split.initial);
  const std::vector<MutationBatch> batches =
      MakeBatches(&shadow, split.held_back, /*count=*/8, /*batch_size=*/48, 253);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  engine.EnterAsyncMode();
  for (const MutationBatch& batch : batches) {
    engine.AsyncApplyMutations(batch);
    engine.AsyncStep(/*budget=*/64);  // partial rounds only: stay unconverged
  }

  engine.ExitAsyncReconcile();
  EXPECT_FALSE(engine.async_mode());
  EXPECT_EQ(engine.AsyncResidual(), 0.0);

  MutableGraph final_graph(shadow.ToEdgeList());
  GraphBoltEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  const auto& values = engine.values();
  const auto& want = fresh.values();
  ASSERT_EQ(values.size(), want.size());
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], want[v]) << "vertex " << v;
  }
  // The dependency store is live again: a BSP refinement must work and track
  // the same horizon a fresh engine would.
  ASSERT_EQ(engine.store().tracked_levels(), fresh.store().tracked_levels());
}

// Re-entry is idempotent: enter/exit/enter leaves a consistent engine.
TEST(AsyncReconcile, ReentryAfterReconcile) {
  ThreadPool::SetNumThreads(1);
  const EdgeList full = GenerateRmat(200, 1400, {.seed = 261});
  const StreamSplit split = SplitForStreaming(full, 0.5, 262);
  const std::vector<MutationBatch> chunks = AdditionChunks(split.held_back, 32);
  ASSERT_GE(chunks.size(), 2u);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();

  engine.EnterAsyncMode();
  engine.EnterAsyncMode();  // no-op, not a crash
  engine.AsyncApplyMutations(chunks[0]);
  engine.ExitAsyncReconcile();

  engine.EnterAsyncMode();
  engine.AsyncApplyMutations(chunks[1]);
  EXPECT_GE(engine.AsyncResidual(), 0.0);
  engine.ExitAsyncReconcile();
  EXPECT_FALSE(engine.async_mode());

  MutableGraph final_graph(graph.ToEdgeList());
  GraphBoltEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  const auto& values = engine.values();
  for (size_t v = 0; v < values.size(); ++v) {
    ASSERT_EQ(values[v], fresh.values()[v]) << "vertex " << v;
  }
}

// ----- Driver layer: degrade-flip, async-fresh serving, self-clear -----------

// Floods a capacity-1 queue under zero governor thresholds so the worker
// observes queued pressure, flips the engine async, and serves degraded
// queries from continuously-updating values. The test samples stats between
// flood bursts and requires *progression*: two async-fresh samples with
// strictly increasing async_applies. Once the flood stops, the idle
// AsyncTick drains pressure and the mode self-clears through a reconciling
// barrier; the final exact barrier then compares against a from-scratch
// engine on the full graph.
TEST(AsyncDriver, DegradeFlipServesFreshThenSelfClears) {
  ThreadPool::SetNumThreads(1);
  const EdgeList full = GenerateRmat(800, 30000, {.seed = 271});
  const StreamSplit split = SplitForStreaming(full, 0.2, 272);
  const std::vector<MutationBatch> chunks = AdditionChunks(split.held_back, 100);
  ASSERT_GT(chunks.size(), 64u);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  using Driver = StreamDriver<GraphBoltEngine<PageRank>>;
  Driver driver(&engine, {.batch_size = 1u << 20,
                          // Short flush interval: idle polls run AsyncTick
                          // often, which is what self-clears the mode.
                          .flush_interval_seconds = 0.005,
                          .max_pending_batches = 1,
                          .overflow = Driver::OverflowPolicy::kDegrade,
                          .coalesce = false,
                          .governor = {.degrade_pressure_seconds = 0.0,
                                       .recover_pressure_seconds = 0.0},
                          .async_mode = AsyncModePolicy::kDegradeOnly,
                          .async_step_budget = 256});

  // Warm the latency EWMA with one normally-applied batch.
  ASSERT_EQ(driver.IngestBatch(chunks[0]), chunks[0].size());
  driver.Flush();
  driver.PrepQuery();
  ASSERT_GT(driver.stats().apply_ewma_seconds, 0.0);

  // Paced flood: one chunk every ~300us against a ~1.5ms apply keeps the
  // queue non-empty at every governor update, so the degrade window stays
  // open for the whole stream. (A tight unpaced loop starves the worker on
  // the driver mutex instead, and the degrade gutter then coalesces the
  // whole backlog into one batch — no sustained pressure at all.) Sampling
  // queries only while degraded: a degraded PrepQuery serves immediately
  // without draining the queue, so the async window survives the sampling;
  // a barrier here would drain the backlog and clear the mode under the
  // test's feet. Progression = two async-fresh samples with strictly
  // increasing async_applies.
  uint64_t fresh_samples = 0;
  uint64_t last_applies = 0;
  bool progressed = false;
  bool saw_residual = false;
  for (size_t next = 1; next < chunks.size(); ++next) {
    ASSERT_EQ(driver.IngestBatch(chunks[next]), chunks[next].size());
    driver.Flush();
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    if (!driver.degraded()) {
      continue;
    }
    Timer wall;
    EXPECT_TRUE(driver.PrepQuery());
    EXPECT_LT(wall.Seconds(), 0.2);  // degraded serve never blocks
    const EngineStats stats = driver.stats();
    if (stats.async_fresh_queries > fresh_samples) {
      // This degraded query was served from live async values.
      if (fresh_samples > 0 && stats.async_applies > last_applies) {
        progressed = true;  // the served values moved between samples
      }
      fresh_samples = stats.async_fresh_queries;
      last_applies = stats.async_applies;
      saw_residual = saw_residual || stats.async_residual > 0.0;
    }
  }
  EXPECT_TRUE(progressed) << "no freshness progression across degraded queries";
  EXPECT_TRUE(saw_residual) << "async-fresh serving never reported a residual bound";

  // Flood over: idle AsyncTicks drain pressure and self-clear the mode.
  for (int i = 0; i < 1000 && driver.degraded(); ++i) {
    std::this_thread::sleep_for(kTick);
  }
  EXPECT_FALSE(driver.degraded());
  driver.PrepQuery();  // exact barrier; reconciles if still engaged

  const EngineStats stats = driver.stats();
  EXPECT_GE(stats.async_entries, 1u);
  EXPECT_GE(stats.async_applies, 1u);
  EXPECT_GE(stats.async_fresh_queries, 2u);
  EXPECT_GE(stats.async_reconciles, 1u);
  EXPECT_EQ(stats.async_residual, 0.0);
  EXPECT_EQ(stats.mutations_dropped, 0u);

  // Post-barrier state: reconciles recompute from scratch and BSP refines
  // exactly, so the values sit within float-reassociation distance of a
  // from-scratch engine on the full graph (the refinement_test bound).
  MutableGraph final_graph(full);
  GraphBoltEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  EXPECT_LT(MaxGap(driver.QuerySnapshot(), fresh.values()), 1e-6);
}

// kOff never flips the engine, no matter the pressure.
TEST(AsyncDriver, PolicyOffNeverEngages) {
  ThreadPool::SetNumThreads(1);
  const EdgeList full = GenerateRmat(300, 4000, {.seed = 281});
  const StreamSplit split = SplitForStreaming(full, 0.4, 282);
  const std::vector<MutationBatch> chunks = AdditionChunks(split.held_back, 8);
  ASSERT_GT(chunks.size(), 16u);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  using Driver = StreamDriver<GraphBoltEngine<PageRank>>;
  Driver driver(&engine, {.batch_size = 1u << 20,
                          .flush_interval_seconds = 0.005,
                          .max_pending_batches = 1,
                          .overflow = Driver::OverflowPolicy::kDegrade,
                          .coalesce = false,
                          .governor = {.degrade_pressure_seconds = 0.0,
                                       .recover_pressure_seconds = 0.0},
                          .async_mode = AsyncModePolicy::kOff});
  for (const MutationBatch& chunk : chunks) {
    ASSERT_EQ(driver.IngestBatch(chunk), chunk.size());
    driver.Flush();
  }
  driver.PrepQuery();
  for (int i = 0; i < 1000 && driver.degraded(); ++i) {
    std::this_thread::sleep_for(kTick);
  }
  driver.PrepQuery();
  const EngineStats stats = driver.stats();
  EXPECT_EQ(stats.async_entries, 0u);
  EXPECT_EQ(stats.async_applies, 0u);
  EXPECT_EQ(stats.async_fresh_queries, 0u);
  EXPECT_FALSE(engine.async_mode());
}

// ----- Driver layer: the sharded protocol ------------------------------------

// Same flood on the multi-lane driver: lane applies flip the shared engine
// under the global engine mutex, async applies keep the cross-lane journal
// order (observer under journal_mu_), and the mode self-clears through one
// reconciling barrier.
TEST(AsyncSharded, FloodEngagesAndSelfClears) {
  ThreadPool::SetNumThreads(1);
  const EdgeList full = GenerateRmat(800, 30000, {.seed = 291});
  const StreamSplit split = SplitForStreaming(full, 0.2, 292);
  const std::vector<MutationBatch> chunks = AdditionChunks(split.held_back, 100);
  ASSERT_GT(chunks.size(), 64u);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  DriverConfig config;
  config.shards = 2;
  config.batch_size = 1u << 20;
  config.flush_interval_seconds = 0.005;
  config.max_pending_batches = 1;
  config.overflow = OverflowPolicy::kDegrade;
  config.coalesce = false;
  config.governor = {.degrade_pressure_seconds = 0.0, .recover_pressure_seconds = 0.0};
  config.async_mode = AsyncModePolicy::kDegradeOnly;
  config.async_step_budget = 256;
  ShardedDriver<GraphBoltEngine<PageRank>> driver(&engine, config);

  // Warm the EWMA, then flood until the async tier engages (or the stream
  // runs out — which would fail the assertions below).
  ASSERT_EQ(driver.IngestBatch(chunks[0]), chunks[0].size());
  driver.Flush();
  driver.PrepQuery();
  // Same pacing rationale as the unsharded flood: a chunk every ~300us
  // against millisecond lane applies keeps lane queues non-empty, so the
  // governor stays degraded and the async window stays open. stats() needs
  // no barrier, so sampling never drains the backlog.
  for (size_t next = 1; next < chunks.size(); ++next) {
    ASSERT_EQ(driver.IngestBatch(chunks[next]), chunks[next].size());
    driver.Flush();
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  EXPECT_GE(driver.stats().async_applies, 1u)
      << "sharded flood never engaged the async tier";

  for (int i = 0; i < 1000 && driver.degraded(); ++i) {
    std::this_thread::sleep_for(kTick);
  }
  EXPECT_FALSE(driver.degraded());
  driver.PrepQuery();

  const EngineStats stats = driver.stats();
  EXPECT_GE(stats.async_entries, 1u);
  EXPECT_GE(stats.async_applies, 1u);
  EXPECT_GE(stats.async_reconciles, 1u);
  EXPECT_EQ(stats.async_residual, 0.0);
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_FALSE(engine.async_mode());

  MutableGraph final_graph(full);
  GraphBoltEngine<PageRank> fresh(&final_graph, PageRank{});
  fresh.InitialCompute();
  EXPECT_LT(MaxGap(driver.QuerySnapshot(), fresh.values()), 1e-6);
}

}  // namespace
}  // namespace graphbolt
