// Tests for the extension surface: Connected Components, Widest Path,
// Personalized PageRank, buffered mutations (§4.1), and GB-Reset's
// direction optimization.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/algorithms/coem.h"
#include "src/algorithms/connected_components.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/personalized_pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/algorithms/widest_path.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

// Symmetrizes an edge list (adds the reverse of every edge).
EdgeList Symmetrize(EdgeList list) {
  const size_t original = list.num_edges();
  for (size_t i = 0; i < original; ++i) {
    const Edge e = list.edges()[i];
    list.edges().push_back({e.dst, e.src, e.weight});
  }
  list.SortAndDeduplicate();
  return list;
}

// ----- Connected Components ----------------------------------------------------

TEST(ConnectedComponents, TwoIslands) {
  EdgeList list;
  list.set_num_vertices(6);
  list.Add(0, 1);
  list.Add(1, 0);
  list.Add(1, 2);
  list.Add(2, 1);
  list.Add(4, 5);
  list.Add(5, 4);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<ConnectedComponents> engine(
      &graph, ConnectedComponents{}, {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[0], 0.0);
  EXPECT_DOUBLE_EQ(engine.values()[1], 0.0);
  EXPECT_DOUBLE_EQ(engine.values()[2], 0.0);
  EXPECT_DOUBLE_EQ(engine.values()[3], 3.0);  // isolated
  EXPECT_DOUBLE_EQ(engine.values()[4], 4.0);
  EXPECT_DOUBLE_EQ(engine.values()[5], 4.0);
}

TEST(ConnectedComponents, EdgeAdditionMergesComponents) {
  EdgeList list;
  list.set_num_vertices(4);
  list.Add(0, 1);
  list.Add(1, 0);
  list.Add(2, 3);
  list.Add(3, 2);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<ConnectedComponents> engine(
      &graph, ConnectedComponents{}, {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[3], 2.0);
  engine.ApplyMutations({EdgeMutation::Add(1, 2), EdgeMutation::Add(2, 1)});
  EXPECT_DOUBLE_EQ(engine.values()[2], 0.0);
  EXPECT_DOUBLE_EQ(engine.values()[3], 0.0);
}

TEST(ConnectedComponents, EdgeDeletionSplitsComponents) {
  EdgeList list;
  list.set_num_vertices(4);
  list.Add(0, 1);
  list.Add(1, 0);
  list.Add(1, 2);
  list.Add(2, 1);
  list.Add(2, 3);
  list.Add(3, 2);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<ConnectedComponents> engine(
      &graph, ConnectedComponents{}, {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[3], 0.0);
  engine.ApplyMutations({EdgeMutation::Delete(1, 2), EdgeMutation::Delete(2, 1)});
  EXPECT_DOUBLE_EQ(engine.values()[1], 0.0);
  EXPECT_DOUBLE_EQ(engine.values()[2], 2.0);
  EXPECT_DOUBLE_EQ(engine.values()[3], 2.0);
}

TEST(ConnectedComponents, StreamingMatchesRestart) {
  EdgeList full = Symmetrize(GenerateRmat(500, 3000, {.seed = 150}));
  StreamSplit split = SplitForStreaming(full, 0.5, 151);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<ConnectedComponents> bolt(
      &g1, ConnectedComponents{}, {.max_iterations = 256, .run_to_convergence = true});
  LigraEngine<ConnectedComponents> ligra(
      &g2, ConnectedComponents{}, {.max_iterations = 256, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 152);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.5});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9) << "round " << round;
  }
}

// ----- Widest Path ---------------------------------------------------------------

TEST(WidestPath, BottleneckOnDiamond) {
  // 0 -> 1 -> 3 with capacities 10, 2 and 0 -> 2 -> 3 with 5, 5.
  EdgeList list;
  list.set_num_vertices(4);
  list.Add(0, 1, 10.0f);
  list.Add(1, 3, 2.0f);
  list.Add(0, 2, 5.0f);
  list.Add(2, 3, 5.0f);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<WidestPath> engine(&graph, WidestPath(0),
                                     {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[1], 10.0);
  EXPECT_DOUBLE_EQ(engine.values()[3], 5.0);  // via 2
}

TEST(WidestPath, DeletionNarrowsPath) {
  EdgeList list;
  list.set_num_vertices(4);
  list.Add(0, 1, 10.0f);
  list.Add(1, 3, 2.0f);
  list.Add(0, 2, 5.0f);
  list.Add(2, 3, 5.0f);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<WidestPath> engine(&graph, WidestPath(0),
                                     {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  engine.ApplyMutations({EdgeMutation::Delete(2, 3)});
  EXPECT_DOUBLE_EQ(engine.values()[3], 2.0);  // forced through the bottleneck
  engine.ApplyMutations({EdgeMutation::Add(2, 3, 7.0f)});
  EXPECT_DOUBLE_EQ(engine.values()[3], 5.0);  // min(5, 7) via 2
}

TEST(WidestPath, StreamingMatchesRestart) {
  EdgeList full = GenerateRmat(500, 4000, {.seed = 153, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 154);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<WidestPath> bolt(&g1, WidestPath(0),
                                   {.max_iterations = 256, .run_to_convergence = true});
  LigraEngine<WidestPath> ligra(&g2, WidestPath(0),
                                {.max_iterations = 256, .run_to_convergence = true});
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 155);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.5});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-9) << "round " << round;
  }
}

// ----- Personalized PageRank -------------------------------------------------------

TEST(PersonalizedPageRank, MassConcentratesNearSources) {
  EdgeList full = GenerateRmat(1000, 8000, {.seed = 156});
  MutableGraph graph(full);
  PersonalizedPageRank algo({0, 1, 2}, graph.num_vertices());
  LigraEngine<PersonalizedPageRank> engine(&graph, algo);
  engine.InitialCompute();
  // Sources hold teleport mass; vertices with no path from sources get 0.
  EXPECT_GT(engine.values()[0], 0.0);
  double total_nonsource = 0.0;
  for (VertexId v = 3; v < graph.num_vertices(); ++v) {
    EXPECT_GE(engine.values()[v], -1e-12);
    total_nonsource += engine.values()[v];
  }
  const double total_source =
      engine.values()[0] + engine.values()[1] + engine.values()[2];
  EXPECT_GT(total_source, total_nonsource / graph.num_vertices() * 3);
}

TEST(PersonalizedPageRank, StreamingMatchesRestart) {
  EdgeList full = GenerateRmat(800, 6000, {.seed = 157});
  StreamSplit split = SplitForStreaming(full, 0.5, 158);
  PersonalizedPageRank algo({0, 5, 9}, full.num_vertices());
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PersonalizedPageRank> bolt(&g1, algo);
  LigraEngine<PersonalizedPageRank> ligra(&g2, algo);
  bolt.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 159);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.6});
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-6) << "round " << round;
  }
}

// ----- Buffered mutations (§4.1) ----------------------------------------------------

TEST(BufferedMutations, EnqueueThenProcessMatchesDirectApply) {
  EdgeList full = GenerateRmat(400, 3000, {.seed = 160});
  StreamSplit split = SplitForStreaming(full, 0.5, 161);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> buffered(&g1, PageRank{});
  GraphBoltEngine<PageRank> direct(&g2, PageRank{});
  buffered.InitialCompute();
  direct.InitialCompute();

  UpdateStream stream(split.held_back, 162);
  const MutationBatch b1 = stream.NextBatch(g1, {.size = 20, .add_fraction = 0.6});
  const MutationBatch b2 = stream.NextBatch(g1, {.size = 20, .add_fraction = 0.6});
  buffered.EnqueueMutations(b1);
  buffered.EnqueueMutations(b2);
  EXPECT_EQ(buffered.pending_mutation_count(), b1.size() + b2.size());
  buffered.ProcessPending();
  EXPECT_EQ(buffered.pending_mutation_count(), 0u);

  MutationBatch combined = b1;
  combined.insert(combined.end(), b2.begin(), b2.end());
  direct.ApplyMutations(combined);
  EXPECT_LT(MaxGap(buffered.values(), direct.values()), 1e-9);
}

TEST(BufferedMutations, ProcessPendingWithEmptyBufferIsNoop) {
  EdgeList list = GenerateRmat(200, 1000, {.seed = 163});
  MutableGraph graph(list);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  const std::vector<double> before = engine.values();
  const AppliedMutations applied = engine.ProcessPending();
  EXPECT_TRUE(applied.Empty());
  EXPECT_LT(MaxGap(before, engine.values()), 1e-15);
}

// ----- Weight-update mutations ---------------------------------------------------------

TEST(WeightUpdates, RefinementMatchesRestartForWeightedAlgorithms) {
  // CoEM's aggregation and normalization both read edge weights, so weight
  // updates must retract the old contribution exactly.
  EdgeList full = GenerateRmat(500, 4000, {.seed = 170, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.7, 171);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  CoEM algo(full.num_vertices(), 0.08, 172);
  GraphBoltEngine<CoEM> bolt(&g1, algo);
  LigraEngine<CoEM> ligra(&g2, algo);
  bolt.InitialCompute();
  ligra.InitialCompute();

  Rng rng(173);
  for (int round = 0; round < 5; ++round) {
    MutationBatch batch;
    const EdgeList snapshot = g1.ToEdgeList();
    for (int i = 0; i < 25; ++i) {
      const Edge& e = snapshot.edges()[rng.NextBounded(snapshot.num_edges())];
      batch.push_back(EdgeMutation::UpdateWeight(
          e.src, e.dst, static_cast<Weight>(0.1 + rng.NextDouble())));
    }
    bolt.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(bolt.values(), ligra.values()), 1e-8) << "round " << round;
  }
}

TEST(WeightUpdates, SsspReactsToWeightChange) {
  EdgeList list;
  list.set_num_vertices(3);
  list.Add(0, 1, 1.0f);
  list.Add(0, 2, 5.0f);
  list.Add(1, 2, 1.0f);
  MutableGraph graph(std::move(list));
  GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                               {.max_iterations = 64, .run_to_convergence = true});
  engine.InitialCompute();
  EXPECT_DOUBLE_EQ(engine.values()[2], 2.0);  // via 1
  engine.ApplyMutations({EdgeMutation::UpdateWeight(1, 2, 10.0f)});
  EXPECT_DOUBLE_EQ(engine.values()[2], 5.0);  // direct edge now shorter
  engine.ApplyMutations({EdgeMutation::UpdateWeight(0, 2, 0.5f)});
  EXPECT_DOUBLE_EQ(engine.values()[2], 0.5);
}

// ----- Direction optimization ---------------------------------------------------------

TEST(DirectionOptimization, DenseSwitchPreservesResults) {
  EdgeList list = GenerateRmat(600, 5000, {.seed = 164});
  MutableGraph g1(list);
  MutableGraph g2(list);
  MutableGraph g3(list);
  // Aggressive threshold: switches to dense pulls almost every iteration.
  ResetEngine<PageRank> dense(&g1, PageRank{}, {.dense_threshold = 0.01});
  ResetEngine<PageRank> sparse(&g2, PageRank{}, {.dense_threshold = 2.0});
  LigraEngine<PageRank> reference(&g3, PageRank{});
  dense.InitialCompute();
  sparse.InitialCompute();
  reference.InitialCompute();
  EXPECT_LT(MaxGap(dense.values(), reference.values()), 1e-9);
  EXPECT_LT(MaxGap(sparse.values(), reference.values()), 1e-9);
}

TEST(DirectionOptimization, DenseSwitchSurvivesMutations) {
  EdgeList full = GenerateRmat(500, 4000, {.seed = 165});
  StreamSplit split = SplitForStreaming(full, 0.5, 166);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  ResetEngine<PageRank> dense(&g1, PageRank{}, {.dense_threshold = 0.05});
  LigraEngine<PageRank> reference(&g2, PageRank{});
  dense.InitialCompute();
  reference.InitialCompute();
  UpdateStream stream(split.held_back, 167);
  for (int round = 0; round < 4; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.6});
    dense.ApplyMutations(batch);
    reference.ApplyMutations(batch);
    ASSERT_LT(MaxGap(dense.values(), reference.values()), 1e-9) << "round " << round;
  }
}

// ----- State serialization ---------------------------------------------------------

TEST(StateSerialization, SaveLoadResumesStreamingExactly) {
  EdgeList full = GenerateRmat(400, 3000, {.seed = 180, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 181);
  MutableGraph g1(split.initial);
  GraphBoltEngine<PageRank> original(&g1, PageRank{});
  original.InitialCompute();
  UpdateStream stream(split.held_back, 182);
  const MutationBatch warmup = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.6});
  original.ApplyMutations(warmup);

  const std::string path = testing::TempDir() + "/engine_state.bin";
  ASSERT_TRUE(original.SaveState(path));

  // Resume in a "fresh process": same graph snapshot, new engine.
  MutableGraph g2(g1.ToEdgeList());
  GraphBoltEngine<PageRank> resumed(&g2, PageRank{});
  ASSERT_TRUE(resumed.LoadState(path));
  EXPECT_LT(MaxGap(resumed.values(), original.values()), 1e-15);
  EXPECT_EQ(resumed.store().tracked_levels(), original.store().tracked_levels());
  EXPECT_EQ(resumed.store().total_levels(), original.store().total_levels());

  // Both engines must refine identically from here.
  const MutationBatch next = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.6});
  original.ApplyMutations(next);
  resumed.ApplyMutations(next);
  EXPECT_LT(MaxGap(resumed.values(), original.values()), 1e-12);
  std::remove(path.c_str());
}

TEST(StateSerialization, LoadRejectsWrongGraph) {
  EdgeList list = GenerateRmat(100, 600, {.seed = 183});
  MutableGraph g1(list);
  GraphBoltEngine<PageRank> engine(&g1, PageRank{});
  engine.InitialCompute();
  const std::string path = testing::TempDir() + "/engine_state_bad.bin";
  ASSERT_TRUE(engine.SaveState(path));

  MutableGraph g2(GenerateRmat(50, 300, {.seed = 184}));  // different vertex count
  GraphBoltEngine<PageRank> other(&g2, PageRank{});
  EXPECT_FALSE(other.LoadState(path));
  std::remove(path.c_str());
}

TEST(StateSerialization, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/garbage_state.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not an engine state";
  }
  MutableGraph graph(GenerateRmat(50, 300, {.seed = 185}));
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  EXPECT_FALSE(engine.LoadState(path));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphbolt
