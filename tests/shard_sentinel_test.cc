// Sharded sentinel tier: the PR-5 hardening features (stall watchdog,
// kShedToWal / kShedOldest overflow, kDegrade stale reads) running on the
// multi-lane ShardedDriver, which used to be rejected by
// DriverConfig::Validate for shards > 1.
//
// Conventions follow sentinel_test.cc: one pool thread, pre-generated
// streams, deterministic fault injection, and bitwise (==) comparison.
// Policies that reorder batches (shed replay, recovery) use addition-only
// distinct-edge streams against ResetEngine, whose fixpoint depends only on
// the final graph, so equality stays exact under reordering. The
// stall-under-watchdog differential instead records the admitted stream
// through the apply observer and replays it through the *unsharded*
// StreamDriver — the acceptance criterion for lifting the restrictions.
//
// Compiled with GRAPHBOLT_FAULT_INJECTION=1 so kStageStall is a live hook.
// Runs under `ctest -L fault` / `-L concurrency`; the concurrent flood
// differential is seed-swept (`-L fuzz`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/engine/reset_engine.h"
#include "src/fault/checkpoint.h"
#include "src/fault/fault_injector.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/parallel/thread_pool.h"
#include "src/sentinel/watchdog.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "src/stream/update_stream.h"
#include "src/util/timer.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

constexpr auto kTick = std::chrono::milliseconds(10);

// Pre-generates `count` batches against an evolving shadow graph (same
// helper as sentinel_test.cc / fault_recovery_test.cc).
std::vector<MutationBatch> MakeBatches(const StreamSplit& split, size_t count, size_t batch_size,
                                       uint64_t seed) {
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, seed);
  std::vector<MutationBatch> batches;
  for (size_t i = 0; i < count; ++i) {
    MutationBatch batch = stream.NextBatch(shadow, {.size = batch_size, .add_fraction = 0.6});
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Chops the held-back additions into distinct-edge, addition-only batches;
// the final graph is then independent of batch boundaries and apply order.
std::vector<MutationBatch> AdditionChunks(const std::vector<Edge>& edges, size_t chunk) {
  std::vector<MutationBatch> out;
  for (size_t i = 0; i < edges.size(); i += chunk) {
    MutationBatch batch;
    for (size_t j = i; j < std::min(i + chunk, edges.size()); ++j) {
      batch.push_back(EdgeMutation::Add(edges[j].src, edges[j].dst, edges[j].weight));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

// The edges lane 0 owns under `shards` lanes (src % shards == 0), or the
// complement. Routing a flood at exactly one lane makes the overflow state
// of that lane's capacity-1 queue fully deterministic while its worker is
// parked, no matter how many sibling lanes run beside it.
std::vector<Edge> EdgesForLaneZero(const std::vector<Edge>& edges, size_t shards,
                                   bool want_lane_zero) {
  std::vector<Edge> out;
  for (const Edge& e : edges) {
    if ((static_cast<size_t>(e.src) % shards == 0) == want_lane_zero) {
      out.push_back(e);
    }
  }
  return out;
}

template <typename Driver>
bool AwaitHealthy(Driver& driver, int max_ticks = 500) {
  for (int i = 0; i < max_ticks; ++i) {
    if (driver.healthy()) {
      return true;
    }
    std::this_thread::sleep_for(kTick);
  }
  return false;
}

// Barrier that tolerates a stall landing mid-wait: retry until a barrier
// completes on a healthy driver (never calls Recover — that is the
// watchdog's job in these tests).
template <typename Driver>
bool BarrierOnHealthy(Driver& driver, int max_ticks = 500) {
  for (int i = 0; i < max_ticks; ++i) {
    if (driver.healthy()) {
      driver.PrepQuery();
      if (driver.healthy()) {
        return true;
      }
    }
    std::this_thread::sleep_for(kTick);
  }
  return false;
}

template <typename GotValues, typename WantValues>
void ExpectBitwiseEqual(const GotValues& got, const WantValues& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], want[v]) << "vertex " << v;
  }
}

// From-scratch reference: a fresh ResetEngine over the final graph.
template <typename Values>
void ExpectMatchesFromScratch(const Values& got, MutableGraph* final_graph) {
  ResetEngine<PageRank> fresh(final_graph, PageRank{});
  fresh.InitialCompute();
  ExpectBitwiseEqual(got, fresh.values());
}

// ----- Lane-stall isolation: one stalled lane never blocks siblings ----------

// Watchdog auto-recovery OFF: the only recovery available is lane-local
// (the watchdog's verdict releases the stalled lane's cancellation token;
// the lane sheds its in-hand batch durably and resumes). While lane 0 is
// parked inside its apply, sibling lanes must keep promoting — and after
// the lane heals itself, the next barrier replays the shed batch so
// nothing is lost.
TEST(ShardedWatchdog, LaneStallIsolationShedsAndResumes) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir ckpt_dir;
  const EdgeList full = GenerateRmat(600, 5000, {.seed = 111});
  const StreamSplit split = SplitForStreaming(full, 0.5, 112);
  const std::vector<Edge> lane0 = EdgesForLaneZero(split.held_back, 4, true);
  const std::vector<Edge> rest = EdgesForLaneZero(split.held_back, 4, false);
  ASSERT_GT(lane0.size(), 3u);
  ASSERT_GT(rest.size(), 4u);
  const std::vector<MutationBatch> lane0_chunks =
      AdditionChunks(lane0, (lane0.size() + 2) / 3);
  ASSERT_EQ(lane0_chunks.size(), 3u);
  const std::vector<MutationBatch> rest_chunks =
      AdditionChunks(rest, (rest.size() + 3) / 4);
  ASSERT_EQ(rest_chunks.size(), 4u);

  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultInjector injector(/*seed=*/0x150);
  Checkpointer<ResetEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 0}, &injector);
  DriverConfig config;
  config.shards = 4;
  config.batch_size = 1u << 20;
  config.flush_interval_seconds = 3600.0;
  config.max_pending_batches = 4;
  config.overflow = OverflowPolicy::kShedToWal;
  config.coalesce = false;
  config.checkpoint_dir = ckpt_dir.path();
  config.watchdog_stall_seconds = 1.5;
  config.watchdog_poll_seconds = 0.02;
  config.watchdog_auto_recover = false;  // lane-local recovery only
  ShardedDriver<ResetEngine<PageRank>> driver(&engine, config, &checkpointer, &injector);

  injector.ArmOnce(FaultSite::kStageStall, 1);
  ASSERT_EQ(driver.IngestBatch(lane0_chunks[0]), lane0_chunks[0].size());
  driver.Flush();
  for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
    std::this_thread::sleep_for(kTick);
  }
  ASSERT_GE(injector.fired(FaultSite::kStageStall), 1u);  // lane 0 parked

  // Siblings promote while lane 0 holds its batch: the stall verdict has
  // not landed yet (stalls_detected == 0 is re-checked below), and the
  // sibling applies complete orders of magnitude inside the 1.5 s timeout.
  for (const MutationBatch& chunk : rest_chunks) {
    ASSERT_EQ(driver.IngestBatch(chunk), chunk.size());
    driver.Flush();
  }
  bool siblings_progressed = false;
  for (int i = 0; i < 500 && !siblings_progressed; ++i) {
    siblings_progressed = driver.stats().batches_applied >= rest_chunks.size();
    if (!siblings_progressed) {
      std::this_thread::sleep_for(kTick);
    }
  }
  EXPECT_TRUE(siblings_progressed) << "stalled lane 0 blocked its siblings";
  EXPECT_EQ(driver.stats().stalls_detected, 0u)
      << "sibling progress was only observed after the watchdog verdict";
  EXPECT_EQ(driver.stats().mutations_shed_to_wal, 0u);  // lane 0 still in-hand

  // The watchdog declares the stall; lane-local recovery sheds the in-hand
  // batch durably and the lane resumes — no global Recover() involved.
  for (int i = 0; i < 500 && driver.stats().mutations_shed_to_wal == 0; ++i) {
    std::this_thread::sleep_for(kTick);
  }
  ASSERT_TRUE(AwaitHealthy(driver));
  {
    const EngineStats stats = driver.stats();
    EXPECT_GE(stats.stalls_detected, 1u);
    EXPECT_GT(stats.mutations_shed_to_wal, 0u);
    EXPECT_EQ(stats.watchdog_recoveries, 0u);
    EXPECT_EQ(stats.recoveries, 0u);
  }

  // The revived lane keeps working, and the barrier's replay phase folds
  // the shed batch back in.
  ASSERT_EQ(driver.IngestBatch(lane0_chunks[1]), lane0_chunks[1].size());
  ASSERT_EQ(driver.IngestBatch(lane0_chunks[2]), lane0_chunks[2].size());
  driver.Flush();
  driver.PrepQuery();
  const EngineStats stats = driver.stats();
  EXPECT_TRUE(driver.healthy());
  EXPECT_EQ(stats.mutations_dropped, 0u);
  EXPECT_GE(stats.shed_batches_replayed, 1u);

  MutableGraph final_graph(full);
  ExpectMatchesFromScratch(driver.QuerySnapshot(), &final_graph);
}

// ----- The acceptance differential: 4 shards vs the unsharded driver ---------

// Watchdog auto-recovery + kShedToWal + an injected lane stall, on a
// GraphBoltEngine (incremental, order-sensitive). The apply observer
// records the admitted stream in global promotion order — including the
// shed-replay barrier and recovery's first-time promotions — and replaying
// that exact stream through the unsharded StreamDriver must reproduce the
// sharded engine state bitwise.
TEST(ShardedWatchdog, InjectedStallBitwiseEqualToUnshardedDriver) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir ckpt_dir;
  const EdgeList full = GenerateRmat(800, 6000, {.seed = 201});
  const StreamSplit split = SplitForStreaming(full, 0.5, 202);
  const std::vector<MutationBatch> batches = MakeBatches(split, 12, 100, 203);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  MutableGraph ref_graph(split.initial);
  GraphBoltEngine<PageRank> reference(&ref_graph, PageRank{});
  engine.InitialCompute();
  reference.InitialCompute();

  std::vector<MutationBatch> admitted;  // global apply order
  {
    FaultInjector injector(/*seed=*/0x4a1);
    Checkpointer<GraphBoltEngine<PageRank>> checkpointer(
        &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 3}, &injector);
    DriverConfig config;
    config.shards = 4;
    config.batch_size = 1u << 20;
    config.flush_interval_seconds = 3600.0;
    config.max_pending_batches = 4;
    config.overflow = OverflowPolicy::kShedToWal;
    config.coalesce = false;
    config.checkpoint_dir = ckpt_dir.path();
    config.watchdog_stall_seconds = 0.3;
    config.watchdog_poll_seconds = 0.02;
    ShardedDriver<GraphBoltEngine<PageRank>> driver(&engine, config, &checkpointer, &injector);
    // Runs under the engine mutex, so the recording needs no extra lock.
    driver.set_apply_observer(
        [&](size_t, const MutationBatch& batch) { admitted.push_back(batch); });
    ASSERT_TRUE(driver.CheckpointNow());
    injector.ArmOnce(FaultSite::kStageStall, 5);  // the 5th lane apply hangs

    size_t offered = 0;
    for (const MutationBatch& batch : batches) {
      ASSERT_TRUE(BarrierOnHealthy(driver));  // wait out any in-flight recovery
      ASSERT_EQ(driver.IngestBatch(batch), batch.size());
      offered += batch.size();
      driver.Flush();
      ASSERT_TRUE(BarrierOnHealthy(driver));  // batch-at-a-time: per-pair order holds
    }
    ASSERT_TRUE(BarrierOnHealthy(driver));

    EXPECT_GE(injector.fired(FaultSite::kStageStall), 1u);
    const EngineStats stats = driver.stats();
    EXPECT_GE(stats.stalls_detected, 1u);
    EXPECT_GE(stats.watchdog_recoveries, 1u);
    EXPECT_GE(stats.recoveries, 1u);
    EXPECT_TRUE(driver.healthy());
    EXPECT_EQ(stats.mutations_dropped, 0u);
    driver.Stop();

    size_t admitted_total = 0;
    for (const MutationBatch& batch : admitted) {
      admitted_total += batch.size();
    }
    ASSERT_EQ(admitted_total, offered);  // nothing lost, nothing duplicated
  }

  // The unsharded replay: same admitted stream, same flush boundaries.
  StreamDriver<GraphBoltEngine<PageRank>> replay(&reference, {.batch_size = 1u << 20,
                                                              .flush_interval_seconds = 3600.0,
                                                              .coalesce = false});
  for (const MutationBatch& batch : admitted) {
    ASSERT_EQ(replay.IngestBatch(batch), batch.size());
    replay.Flush();
  }
  ExpectBitwiseEqual(engine.values(), replay.values());
}

// ----- kShedToWal differential at shards = 1 | 2 | 4 --------------------------

// Lane 0's worker parks on an injected stall, so flooding lane 0 against a
// capacity-1 queue sheds deterministically into the *shared* shed log while
// sibling lanes ingest their share of the stream. Recovery releases the
// parked worker and the barrier replays the log in shed-sequence order;
// the result must match a run that never shed.
TEST(ShardedShedToWal, OverflowIsDurableAndReplayedAtBarrier) {
  ThreadPool::SetNumThreads(1);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ScopedTempDir ckpt_dir;
    const EdgeList full = GenerateRmat(500, 4000, {.seed = 121});
    const StreamSplit split = SplitForStreaming(full, 0.5, 122);
    const std::vector<Edge> lane0 = EdgesForLaneZero(split.held_back, shards, true);
    const std::vector<Edge> rest = EdgesForLaneZero(split.held_back, shards, false);
    ASSERT_GT(lane0.size(), 4u);
    const std::vector<MutationBatch> lane0_chunks =
        AdditionChunks(lane0, (lane0.size() + 3) / 4);
    ASSERT_EQ(lane0_chunks.size(), 4u);  // A, B, C, D
    const std::vector<MutationBatch> rest_chunks = AdditionChunks(rest, 48);

    MutableGraph graph(split.initial);
    ResetEngine<PageRank> engine(&graph, PageRank{});
    engine.InitialCompute();
    FaultInjector injector(/*seed=*/0x5e + shards);
    Checkpointer<ResetEngine<PageRank>> checkpointer(
        &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 0}, &injector);
    DriverConfig config;
    config.shards = shards;
    config.batch_size = 1u << 20;
    config.flush_interval_seconds = 3600.0;
    config.max_pending_batches = 1;
    config.overflow = OverflowPolicy::kShedToWal;
    config.coalesce = false;
    config.checkpoint_dir = ckpt_dir.path();
    ShardedDriver<ResetEngine<PageRank>> driver(&engine, config, &checkpointer, &injector);
    ASSERT_TRUE(driver.CheckpointNow());
    injector.ArmOnce(FaultSite::kStageStall, 1);

    ASSERT_EQ(driver.IngestBatch(lane0_chunks[0]), lane0_chunks[0].size());  // A
    driver.Flush();
    for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
      std::this_thread::sleep_for(kTick);
    }
    ASSERT_GE(injector.fired(FaultSite::kStageStall), 1u);  // lane 0 parked in A

    ASSERT_EQ(driver.IngestBatch(lane0_chunks[1]), lane0_chunks[1].size());  // B -> queued
    driver.Flush();
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[2]), lane0_chunks[2].size());  // C -> shed
    driver.Flush();
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[3]), lane0_chunks[3].size());  // D -> shed
    driver.Flush();
    EXPECT_GE(driver.stats().mutations_shed_to_wal,
              lane0_chunks[2].size() + lane0_chunks[3].size());

    // Sibling lanes ingest their share against live workers (their own
    // overflow, if any, sheds durably too).
    for (const MutationBatch& chunk : rest_chunks) {
      ASSERT_EQ(driver.IngestBatch(chunk), chunk.size());
      driver.Flush();
    }

    // Recovery releases the parked worker (A sheds), restores the
    // checkpoint, promotes B (preserved in the queue), and drains the shed
    // log in shed-sequence order.
    ASSERT_TRUE(driver.Recover());
    driver.PrepQuery();
    const EngineStats stats = driver.stats();
    EXPECT_TRUE(driver.healthy());
    EXPECT_EQ(stats.mutations_dropped, 0u);
    EXPECT_GE(stats.shed_batches_replayed, 3u);  // C, D, and the parked A

    MutableGraph final_graph(full);
    ExpectMatchesFromScratch(driver.QuerySnapshot(), &final_graph);
  }
}

// ----- kShedOldest differential at shards = 1 | 2 | 4 -------------------------

TEST(ShardedShedOldest, EvictionsAreDurableAcrossLanes) {
  ThreadPool::SetNumThreads(1);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ScopedTempDir ckpt_dir;
    const EdgeList full = GenerateRmat(500, 4000, {.seed = 131});
    const StreamSplit split = SplitForStreaming(full, 0.5, 132);
    const std::vector<Edge> lane0 = EdgesForLaneZero(split.held_back, shards, true);
    const std::vector<Edge> rest = EdgesForLaneZero(split.held_back, shards, false);
    ASSERT_GT(lane0.size(), 4u);
    const std::vector<MutationBatch> lane0_chunks =
        AdditionChunks(lane0, (lane0.size() + 3) / 4);
    ASSERT_EQ(lane0_chunks.size(), 4u);  // A, B, C, D
    const std::vector<MutationBatch> rest_chunks = AdditionChunks(rest, 48);

    MutableGraph graph(split.initial);
    ResetEngine<PageRank> engine(&graph, PageRank{});
    engine.InitialCompute();
    FaultInjector injector(/*seed=*/0x01d + shards);
    Checkpointer<ResetEngine<PageRank>> checkpointer(
        &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 0}, &injector);
    DriverConfig config;
    config.shards = shards;
    config.batch_size = 1u << 20;
    config.flush_interval_seconds = 3600.0;
    config.max_pending_batches = 1;
    config.overflow = OverflowPolicy::kShedOldest;
    config.coalesce = false;
    config.checkpoint_dir = ckpt_dir.path();
    ShardedDriver<ResetEngine<PageRank>> driver(&engine, config, &checkpointer, &injector);
    ASSERT_TRUE(driver.CheckpointNow());
    injector.ArmOnce(FaultSite::kStageStall, 1);

    ASSERT_EQ(driver.IngestBatch(lane0_chunks[0]), lane0_chunks[0].size());  // A
    driver.Flush();
    for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
      std::this_thread::sleep_for(kTick);
    }
    ASSERT_GE(injector.fired(FaultSite::kStageStall), 1u);

    ASSERT_EQ(driver.IngestBatch(lane0_chunks[1]), lane0_chunks[1].size());  // B -> queued
    driver.Flush();
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[2]), lane0_chunks[2].size());  // C evicts B
    driver.Flush();
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[3]), lane0_chunks[3].size());  // D evicts C
    driver.Flush();
    EXPECT_GE(driver.stats().shed_oldest_evictions, 2u);
    EXPECT_GT(driver.stats().mutations_shed_to_wal, 0u);

    for (const MutationBatch& chunk : rest_chunks) {
      ASSERT_EQ(driver.IngestBatch(chunk), chunk.size());
      driver.Flush();
    }

    ASSERT_TRUE(driver.Recover());
    driver.PrepQuery();
    const EngineStats stats = driver.stats();
    EXPECT_TRUE(driver.healthy());
    EXPECT_EQ(stats.mutations_dropped, 0u);
    EXPECT_GE(stats.shed_batches_replayed, 3u);  // B, C, and the parked A

    MutableGraph final_graph(full);
    ExpectMatchesFromScratch(driver.QuerySnapshot(), &final_graph);
  }
}

// ----- kDegrade differential at shards = 1 | 2 | 4 ----------------------------

// The watchdog rides along (30 s timeout — armed but silent) to prove the
// full sentinel trio coexists on one sharded config. Zero governor
// thresholds make the hysteresis deterministic: any queued work while the
// EWMA is warm is pressure, and pressure clears exactly when every lane's
// queue is empty.
TEST(ShardedDegrade, ServesSnapshotUnderPressureThenSelfClears) {
  ThreadPool::SetNumThreads(1);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ScopedTempDir ckpt_dir;
    const EdgeList full = GenerateRmat(500, 4000, {.seed = 141});
    StreamSplit split = SplitForStreaming(full, 0.5, 142);
    ASSERT_GT(split.held_back.size(), 8u);
    // Reserve the last held-back edge as the post-recovery nudge batch.
    const Edge nudge_edge = split.held_back.back();
    split.held_back.pop_back();
    const std::vector<Edge> lane0 = EdgesForLaneZero(split.held_back, shards, true);
    const std::vector<Edge> rest = EdgesForLaneZero(split.held_back, shards, false);
    ASSERT_GT(lane0.size(), 4u);
    const std::vector<MutationBatch> lane0_chunks =
        AdditionChunks(lane0, (lane0.size() + 3) / 4);
    ASSERT_EQ(lane0_chunks.size(), 4u);
    const std::vector<MutationBatch> rest_chunks = AdditionChunks(rest, 48);

    MutableGraph graph(split.initial);
    ResetEngine<PageRank> engine(&graph, PageRank{});
    engine.InitialCompute();
    FaultInjector injector(/*seed=*/0xde9 + shards);
    Checkpointer<ResetEngine<PageRank>> checkpointer(
        &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 0}, &injector);
    DriverConfig config;
    config.shards = shards;
    config.batch_size = 1u << 20;
    config.flush_interval_seconds = 3600.0;
    config.max_pending_batches = 1;
    config.overflow = OverflowPolicy::kDegrade;
    config.coalesce = false;
    config.checkpoint_dir = ckpt_dir.path();
    config.governor = {.degrade_pressure_seconds = 0.0, .recover_pressure_seconds = 0.0};
    config.watchdog_stall_seconds = 30.0;  // armed, silent at test timescales
    config.watchdog_poll_seconds = 0.05;
    ShardedDriver<ResetEngine<PageRank>> driver(&engine, config, &checkpointer, &injector);
    ASSERT_TRUE(driver.CheckpointNow());

    // Warm the latency EWMA with one normally-applied batch.
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[0]), lane0_chunks[0].size());
    driver.Flush();
    driver.PrepQuery();
    ASSERT_GT(driver.stats().apply_ewma_seconds, 0.0);

    // Park lane 0's worker, then overfill it: the next chunk queues, the
    // one after coalesces in the gutter (the kDegrade overflow path).
    injector.ArmOnce(FaultSite::kStageStall, 1);
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[1]), lane0_chunks[1].size());
    driver.Flush();
    for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
      std::this_thread::sleep_for(kTick);
    }
    ASSERT_GE(injector.fired(FaultSite::kStageStall), 1u);
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[2]), lane0_chunks[2].size());
    driver.Flush();
    ASSERT_EQ(driver.IngestBatch(lane0_chunks[3]), lane0_chunks[3].size());
    driver.Flush();

    EXPECT_TRUE(driver.degraded());
    EXPECT_EQ(driver.pending_mutations(), lane0_chunks[3].size());
    // A degraded query returns immediately with the last globally
    // consistent snapshot instead of blocking on a barrier the stalled
    // lane can never clear.
    Timer wall;
    EXPECT_TRUE(driver.PrepQuery());
    EXPECT_LT(wall.Seconds(), 0.2);
    EXPECT_GE(driver.stats().degraded_queries, 1u);
    EXPECT_GE(driver.stats().degraded_entries, 1u);

    // Recovery releases the worker; the remaining stream plus the nudge
    // batch give the governor applies with empty queues behind them, which
    // clears the degraded flag on its own.
    ASSERT_TRUE(driver.Recover());
    for (const MutationBatch& chunk : rest_chunks) {
      ASSERT_EQ(driver.IngestBatch(chunk), chunk.size());
    }
    ASSERT_TRUE(driver.Ingest(EdgeMutation::Add(nudge_edge.src, nudge_edge.dst,
                                                nudge_edge.weight)));
    driver.Flush();
    for (int i = 0; i < 500 && driver.degraded(); ++i) {
      std::this_thread::sleep_for(kTick);
    }
    EXPECT_FALSE(driver.degraded());
    driver.PrepQuery();
    EXPECT_EQ(driver.stats().mutations_dropped, 0u);

    MutableGraph final_graph(full);
    ExpectMatchesFromScratch(driver.QuerySnapshot(), &final_graph);
  }
}

// ----- Satellite regression: the lane stale-flush deadline is monotonic ------

// Sub-batch-size mutations parked in lane gutters must promote at the
// flush deadline with no explicit Flush() — the lane worker carries the
// monotonic deadline across poll timeouts (NextPollSeconds), exactly like
// the PR 5 StreamDriver fix. A second wave proves the deadline re-arms.
TEST(ShardedStaleGutter, FlushDeadlineIsMonotonicAcrossPolls) {
  ThreadPool::SetNumThreads(1);
  const EdgeList full = GenerateRmat(200, 1200, {.seed = 151});
  const StreamSplit split = SplitForStreaming(full, 0.5, 152);
  ASSERT_GE(split.held_back.size(), 16u);
  const std::vector<Edge> wave1(split.held_back.begin(), split.held_back.begin() + 8);
  const std::vector<Edge> wave2(split.held_back.begin() + 8, split.held_back.begin() + 16);

  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  DriverConfig config;
  config.shards = 4;
  config.batch_size = 1u << 20;  // far above the wave size: only staleness flushes
  config.flush_interval_seconds = 0.08;
  ShardedDriver<ResetEngine<PageRank>> driver(&engine, config);

  MutableGraph final_graph(split.initial);
  for (const std::vector<Edge>* wave : {&wave1, &wave2}) {
    for (const Edge& e : *wave) {
      ASSERT_TRUE(driver.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight)));
      final_graph.ApplyBatch({EdgeMutation::Add(e.src, e.dst, e.weight)});
    }
    // No Flush(): the lane workers must promote the stale gutters on the
    // deadline alone.
    bool drained = false;
    for (int i = 0; i < 500 && !drained; ++i) {
      drained = driver.pending_mutations() == 0;
      if (!drained) {
        std::this_thread::sleep_for(kTick);
      }
    }
    ASSERT_TRUE(drained) << "stale gutters never flushed without an explicit Flush()";
  }
  // One barrier settles any promotion still in flight; after that the
  // fast path confirms nothing is buffered, in flight, or shed anywhere.
  driver.PrepQuery();
  EXPECT_FALSE(driver.PrepQuery());
  EXPECT_GE(driver.stats().batches_applied, 2u);
  EXPECT_EQ(driver.stats().mutations_dropped, 0u);
  ExpectMatchesFromScratch(driver.QuerySnapshot(), &final_graph);
}

// ----- Seed-swept concurrent flood (fuzz) ------------------------------------

// Three producer threads flood 4 lanes with no pacing against capacity-1
// queues under kShedToWal: whatever interleaving a seed produces, nothing
// may be lost and the barrier must land the exact final graph.
TEST(ShardedShedFuzz, ConcurrentFloodZeroLossBitwise) {
  ThreadPool::SetNumThreads(1);
  for (const uint64_t seed : FuzzSeeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ScopedTempDir ckpt_dir;
    const EdgeList full = GenerateRmat(300, 2400, {.seed = 400 + seed});
    const StreamSplit split = SplitForStreaming(full, 0.5, 500 + seed);
    const std::vector<MutationBatch> chunks = AdditionChunks(split.held_back, 32);

    MutableGraph graph(split.initial);
    ResetEngine<PageRank> engine(&graph, PageRank{});
    engine.InitialCompute();
    Checkpointer<ResetEngine<PageRank>> checkpointer(
        &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 0});
    DriverConfig config;
    config.shards = 4;
    config.batch_size = 64;  // small enough that lanes flush mid-stream
    config.flush_interval_seconds = 3600.0;
    config.max_pending_batches = 1;
    config.overflow = OverflowPolicy::kShedToWal;
    config.coalesce = false;
    config.checkpoint_dir = ckpt_dir.path();
    ShardedDriver<ResetEngine<PageRank>> driver(&engine, config, &checkpointer);

    constexpr size_t kProducers = 3;
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        auto session = driver.OpenSession("tenant-" + std::to_string(p));
        for (size_t i = p; i < chunks.size(); i += kProducers) {
          EXPECT_EQ(session.IngestBatch(chunks[i]), chunks[i].size());
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    driver.PrepQuery();

    size_t offered = 0;
    for (const MutationBatch& chunk : chunks) {
      offered += chunk.size();
    }
    const EngineStats stats = driver.stats();
    EXPECT_EQ(stats.mutations_enqueued, offered);
    EXPECT_EQ(stats.mutations_dropped, 0u);

    MutableGraph final_graph(full);
    ExpectMatchesFromScratch(driver.QuerySnapshot(), &final_graph);
  }
}

// ----- The sharded acceptance torture test -----------------------------------

// Poison batches, 4x overload (no pacing against capacity-2 lane queues),
// and one injected lane stall, all on 4 shards with watchdog auto-recovery
// on. The apply observer maintains a shadow graph of the admitted stream
// in promotion order (recovery's first-time promotions included), so the
// zero-loss claim is structural: observed == accepted, and a from-scratch
// run over the shadow graph must be bitwise-identical.
TEST(TortureShardedSentinel, PoisonOverloadStallZeroLossFourLanes) {
  ThreadPool::SetNumThreads(1);
  ScopedTempDir ckpt_dir;
  ScopedTempDir quarantine_dir;
  const EdgeList full = GenerateRmat(1000, 9000, {.seed = 301});
  const StreamSplit split = SplitForStreaming(full, 0.5, 302);
  const std::vector<MutationBatch> valid = AdditionChunks(split.held_back, 48);
  ASSERT_GT(valid.size(), 30u);

  MutableGraph graph(split.initial);
  ResetEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  FaultInjector injector(/*seed=*/0x70b8);
  Checkpointer<ResetEngine<PageRank>> checkpointer(
      &engine, &graph, {.directory = ckpt_dir.path(), .cadence_batches = 8}, &injector);
  DriverConfig config;
  config.shards = 4;
  config.batch_size = 1u << 20;
  config.flush_interval_seconds = 3600.0;
  config.max_pending_batches = 2;
  config.overflow = OverflowPolicy::kShedToWal;
  config.coalesce = false;
  config.checkpoint_dir = ckpt_dir.path();
  config.quarantine_dir = quarantine_dir.path();
  config.admission = {.max_vertex_id = 1u << 20};
  config.watchdog_stall_seconds = 0.5;
  config.watchdog_poll_seconds = 0.02;
  ShardedDriver<ResetEngine<PageRank>> driver(&engine, config, &checkpointer, &injector);

  MutableGraph shadow(split.initial);  // the admitted stream, promotion order
  std::atomic<uint64_t> observed_mutations{0};
  driver.set_apply_observer([&](size_t, const MutationBatch& batch) {
    shadow.ApplyBatch(batch);
    observed_mutations.fetch_add(batch.size());
  });
  ASSERT_TRUE(driver.CheckpointNow());
  // Arm low: under kShedToWal the unpaced flood sheds most batches before
  // they ever reach a lane's apply stage, and shed batches replay only at
  // the barrier — so on a loaded machine a high hit count may never be
  // reached before the post-loop check. The 2nd apply is still mid-flood.
  injector.ArmOnce(FaultSite::kStageStall, 2);

  const float nan = std::numeric_limits<float>::quiet_NaN();
  size_t poison_batches = 0;
  size_t poison_mutations = 0;
  uint64_t accepted_total = 0;
  uint64_t offered_total = 0;
  for (size_t i = 0; i < valid.size(); ++i) {
    if (i % 7 == 3) {
      // Alternate poison flavors; all must bounce to quarantine even while
      // the lanes are overloaded or mid-recovery.
      MutationBatch poison;
      if (i % 14 == 3) {
        for (int k = 0; k < 5; ++k) {
          poison.push_back(EdgeMutation::Add(1, 2 + k, nan));
        }
      } else {
        for (int k = 0; k < 5; ++k) {
          poison.push_back(EdgeMutation::Add((2u << 20) + k, 1));
        }
      }
      ASSERT_EQ(driver.IngestBatch(poison), 0u);
      ++poison_batches;
      poison_mutations += poison.size();
    }
    // No pacing: ingestion runs far ahead of the lane workers, so queues
    // overflow and kShedToWal sheds durably. During the auto-recovery
    // window a lane may refuse its sub-batch; the rejects are the only
    // accounted losses.
    accepted_total += driver.IngestBatch(valid[i]);
    offered_total += valid[i].size();
    driver.Flush();
  }

  // The stall must have fired and the watchdog must have healed the driver
  // without any help from the test.
  for (int i = 0; i < 500 && injector.fired(FaultSite::kStageStall) == 0; ++i) {
    std::this_thread::sleep_for(kTick);
  }
  EXPECT_GE(injector.fired(FaultSite::kStageStall), 1u);
  // The lane turns healthy the moment it sheds its stuck batch, but the
  // escalated Recover() runs on the watchdog thread and lands later — wait
  // for it before auditing the counters.
  for (int i = 0; i < 500 && driver.stats().watchdog_recoveries == 0; ++i) {
    std::this_thread::sleep_for(kTick);
  }
  ASSERT_TRUE(AwaitHealthy(driver));
  ASSERT_TRUE(BarrierOnHealthy(driver));

  const EngineStats stats = driver.stats();
  EXPECT_TRUE(driver.healthy());
  EXPECT_GE(stats.stalls_detected, 1u);
  EXPECT_GE(stats.watchdog_recoveries, 1u);
  EXPECT_GT(stats.mutations_shed_to_wal, 0u) << "overload never engaged the shed path";

  // Exact accounting: every poison batch is in the dead-letter WAL, every
  // accepted mutation was promoted exactly once, and the only losses are
  // the explicitly-counted recovery-window rejections.
  EXPECT_EQ(stats.batches_quarantined, poison_batches);
  EXPECT_EQ(stats.mutations_quarantined, poison_mutations);
  EXPECT_EQ(driver.quarantined_batches(), poison_batches);
  size_t parked = 0;
  driver.quarantine()->ForEach([&](RejectReason reason, MutationBatch&& batch) {
    ++parked;
    EXPECT_TRUE(reason == RejectReason::kNonFiniteWeight ||
                reason == RejectReason::kVertexOutOfRange);
    EXPECT_EQ(batch.size(), 5u);
  });
  EXPECT_EQ(parked, poison_batches);
  EXPECT_EQ(stats.mutations_enqueued, accepted_total);
  EXPECT_EQ(stats.mutations_dropped, offered_total - accepted_total);

  // QuerySnapshot synchronizes on the engine mutex, which also publishes
  // the observer's shadow-graph writes to this thread.
  const auto snapshot = driver.QuerySnapshot();
  EXPECT_EQ(observed_mutations.load(), accepted_total);
  EXPECT_EQ(graph.num_edges(), shadow.num_edges());

  // From-scratch run over the admitted stream: bitwise-identical.
  ExpectMatchesFromScratch(snapshot, &shadow);
}

}  // namespace
}  // namespace graphbolt
