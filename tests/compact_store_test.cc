// Tests for CompactDependencyStore: the paper's §4.1 per-vertex contiguous
// aggregation layout with real vertical pruning, and its use as the
// GraphBolt engine's storage backend.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/algorithms/coem.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/compact_dependency_store.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/generators.h"
#include "src/stream/update_stream.h"
#include "tests/test_util.h"

namespace graphbolt {
namespace {

template <typename Algo>
using CompactEngine = GraphBoltEngine<Algo, CompactDependencyStore<typename Algo::Aggregate>>;

// ----- Store-level behaviour -------------------------------------------------

TEST(CompactStore, StoresAndReadsLevels) {
  CompactDependencyStore<double> store;
  store.Reset(3, 10);
  store.SnapshotLevel(1, {1, 2, 3}, AtomicBitset(3));
  store.SnapshotLevel(2, {4, 2, 3}, AtomicBitset(3));
  EXPECT_EQ(store.tracked_levels(), 2u);
  EXPECT_DOUBLE_EQ(store.At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(store.At(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(store.At(2, 1), 2.0);  // pruned: clamps to last stored
}

TEST(CompactStore, VerticalPruningDropsStableSuffix) {
  CompactDependencyStore<double> store;
  store.Reset(2, 10);
  store.SnapshotLevel(1, {1, 5}, AtomicBitset(2));
  store.SnapshotLevel(2, {1, 6}, AtomicBitset(2));  // vertex 0 stable
  store.SnapshotLevel(3, {1, 6}, AtomicBitset(2));  // both stable
  // Vertex 0 stores one entry, vertex 1 stores two: 3 total, not 6.
  EXPECT_EQ(store.logical_entries(), 3u);
  EXPECT_DOUBLE_EQ(store.At(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(store.At(3, 1), 6.0);
}

TEST(CompactStore, HoleFillingPreservesIndexing) {
  // A vertex stable through levels 2-3 that changes at level 4 must get its
  // holes re-filled so level indexing stays valid (§4.1).
  CompactDependencyStore<double> store;
  store.Reset(1, 10);
  store.SnapshotLevel(1, {1}, AtomicBitset(1));
  store.SnapshotLevel(2, {1}, AtomicBitset(1));
  store.SnapshotLevel(3, {1}, AtomicBitset(1));
  store.SnapshotLevel(4, {9}, AtomicBitset(1));
  EXPECT_EQ(store.logical_entries(), 4u);  // holes 2..3 re-materialized
  EXPECT_DOUBLE_EQ(store.At(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(store.At(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(store.At(4, 0), 9.0);
}

TEST(CompactStore, MaterializeCommitRoundTrip) {
  CompactDependencyStore<double> store;
  store.Reset(4, 10);
  store.SnapshotLevel(1, {1, 2, 3, 4}, AtomicBitset(4));
  store.SnapshotLevel(2, {1, 2, 3, 4}, AtomicBitset(4));  // all pruned
  VertexSubset targets(4);
  targets.Add(1);
  targets.Add(3);
  std::vector<double> scratch;
  store.MaterializeLevel(2, targets, &scratch);
  EXPECT_DOUBLE_EQ(scratch[1], 2.0);
  EXPECT_DOUBLE_EQ(scratch[3], 4.0);
  scratch[1] = 20.0;
  scratch[3] = 40.0;
  store.CommitLevel(2, targets, scratch);
  EXPECT_DOUBLE_EQ(store.At(2, 1), 20.0);
  EXPECT_DOUBLE_EQ(store.At(2, 3), 40.0);
  EXPECT_DOUBLE_EQ(store.At(1, 1), 2.0);  // level 1 untouched
  EXPECT_DOUBLE_EQ(store.At(2, 0), 1.0);  // non-target untouched
}

TEST(CompactStore, RepruneTailsDropsRestabilizedSuffix) {
  CompactDependencyStore<double> store;
  store.Reset(1, 10);
  store.SnapshotLevel(1, {1}, AtomicBitset(1));
  store.SnapshotLevel(2, {2}, AtomicBitset(1));
  VertexSubset target(1);
  target.Add(0);
  std::vector<double> scratch{0.0};
  scratch[0] = 1.0;  // refine level 2 back to the level-1 value
  store.CommitLevel(2, target, scratch);
  EXPECT_EQ(store.logical_entries(), 2u);
  store.RepruneTails(target);
  EXPECT_EQ(store.logical_entries(), 1u);
  EXPECT_DOUBLE_EQ(store.At(2, 0), 1.0);
}

TEST(CompactStore, GrowVerticesAddsIdentityHistory) {
  CompactDependencyStore<double> store;
  store.Reset(2, 10);
  AtomicBitset bits(2);
  bits.Set(0);
  store.SnapshotLevel(1, {1, 2}, std::move(bits));
  store.GrowVertices(4, 0.0);
  EXPECT_DOUBLE_EQ(store.At(1, 3), 0.0);
  EXPECT_TRUE(store.ChangedAt(1).Test(0));
  EXPECT_FALSE(store.ChangedAt(1).Test(3));
}

// ----- Engine on the compact backend ------------------------------------------

TEST(CompactEngineTest, MatchesDenseBackendOnStream) {
  EdgeList full = GenerateRmat(600, 5000, {.seed = 190, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 191);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  GraphBoltEngine<PageRank> dense(&g1, PageRank{});
  CompactEngine<PageRank> compact(&g2, PageRank{});
  dense.InitialCompute();
  compact.InitialCompute();
  ASSERT_LT(MaxGap(dense.values(), compact.values()), 1e-12);

  UpdateStream stream(split.held_back, 192);
  for (int round = 0; round < 8; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.6});
    dense.ApplyMutations(batch);
    compact.ApplyMutations(batch);
    ASSERT_LT(MaxGap(dense.values(), compact.values()), 1e-9) << "round " << round;
  }
}

TEST(CompactEngineTest, MatchesRestartAcrossAlgorithms) {
  EdgeList full = GenerateRmat(500, 4000, {.seed = 193, .assign_random_weights = true});
  StreamSplit split = SplitForStreaming(full, 0.5, 194);
  {
    MutableGraph g1(split.initial);
    MutableGraph g2(split.initial);
    CoEM algo(full.num_vertices(), 0.08, 195);
    CompactEngine<CoEM> compact(&g1, algo);
    LigraEngine<CoEM> ligra(&g2, algo);
    compact.InitialCompute();
    ligra.InitialCompute();
    UpdateStream stream(split.held_back, 196);
    for (int round = 0; round < 5; ++round) {
      const MutationBatch batch = stream.NextBatch(g1, {.size = 30, .add_fraction = 0.6});
      compact.ApplyMutations(batch);
      ligra.ApplyMutations(batch);
      ASSERT_LT(MaxGap(compact.values(), ligra.values()), 1e-8) << "CoEM round " << round;
    }
  }
  {
    MutableGraph g1(split.initial);
    MutableGraph g2(split.initial);
    CompactEngine<Sssp> compact(&g1, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
    LigraEngine<Sssp> ligra(&g2, Sssp(0), {.max_iterations = 256, .run_to_convergence = true});
    compact.InitialCompute();
    ligra.InitialCompute();
    UpdateStream stream(split.held_back, 197);
    for (int round = 0; round < 5; ++round) {
      const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.5});
      compact.ApplyMutations(batch);
      ligra.ApplyMutations(batch);
      ASSERT_LT(MaxGap(compact.values(), ligra.values()), 1e-9) << "SSSP round " << round;
    }
  }
}

TEST(CompactEngineTest, UsesLessMemoryThanDenseForStabilizingAlgorithms) {
  // Label Propagation with a loose tolerance stabilizes quickly; the
  // compact store must hold far fewer entries than levels * vertices.
  EdgeList full = GenerateRmat(2000, 16000, {.seed = 198, .assign_random_weights = true});
  MutableGraph g1(full);
  MutableGraph g2(full);
  LabelPropagation<2> algo(g1.num_vertices(), 0.1, 199, /*tolerance=*/1e-3);
  GraphBoltEngine<LabelPropagation<2>> dense(&g1, algo, {.max_iterations = 20});
  CompactEngine<LabelPropagation<2>> compact(&g2, algo, {.max_iterations = 20});
  dense.InitialCompute();
  compact.InitialCompute();
  const uint64_t full_entries =
      static_cast<uint64_t>(g1.num_vertices()) * dense.store().tracked_levels();
  EXPECT_LT(compact.store().logical_entries(), full_entries * 3 / 4);
  EXPECT_LT(MaxGap(dense.values(), compact.values()), 1e-12);
}

TEST(CompactEngineTest, PrunedHistoryWithCompactBackend) {
  EdgeList full = GenerateRmat(500, 4000, {.seed = 200});
  StreamSplit split = SplitForStreaming(full, 0.5, 201);
  MutableGraph g1(split.initial);
  MutableGraph g2(split.initial);
  CompactEngine<PageRank> compact(&g1, PageRank{}, {.max_iterations = 10, .history_size = 4});
  LigraEngine<PageRank> ligra(&g2, PageRank{});
  compact.InitialCompute();
  ligra.InitialCompute();
  UpdateStream stream(split.held_back, 202);
  for (int round = 0; round < 5; ++round) {
    const MutationBatch batch = stream.NextBatch(g1, {.size = 25, .add_fraction = 0.6});
    compact.ApplyMutations(batch);
    ligra.ApplyMutations(batch);
    ASSERT_LT(MaxGap(compact.values(), ligra.values()), 1e-7) << "round " << round;
  }
}

TEST(CompactEngineTest, SaveLoadRoundTrip) {
  EdgeList list = GenerateRmat(300, 2000, {.seed = 203});
  MutableGraph g1(list);
  CompactEngine<PageRank> original(&g1, PageRank{});
  original.InitialCompute();
  const std::string path = testing::TempDir() + "/compact_state.bin";
  ASSERT_TRUE(original.SaveState(path));

  MutableGraph g2(g1.ToEdgeList());
  CompactEngine<PageRank> resumed(&g2, PageRank{});
  ASSERT_TRUE(resumed.LoadState(path));
  EXPECT_LT(MaxGap(resumed.values(), original.values()), 1e-15);

  const MutationBatch batch{EdgeMutation::Add(0, 7), EdgeMutation::Delete(1, 2)};
  original.ApplyMutations(batch);
  resumed.ApplyMutations(batch);
  EXPECT_LT(MaxGap(resumed.values(), original.values()), 1e-12);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace graphbolt
