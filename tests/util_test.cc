// Unit tests for src/util: logging, timers, RNG, bitsets, CLI, memory
// accounting.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/util/bitset.h"
#include "src/util/cli.h"
#include "src/util/logging.h"
#include "src/util/memory.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace graphbolt {
namespace {

TEST(Logging, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
  EXPECT_STREQ(LogLevelName(LogLevel::kFatal), "FATAL");
}

TEST(Logging, SetAndGetLevel) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

TEST(Logging, CheckPassesOnTrue) {
  GB_CHECK(1 + 1 == 2) << "never shown";
}

TEST(Logging, CheckAbortsOnFalse) {
  EXPECT_DEATH({ GB_CHECK(false) << "boom"; }, "Check failed");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.Millis(), 15.0);
  EXPECT_LT(timer.Seconds(), 5.0);
}

TEST(Timer, ResetRestartsEpoch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.Reset();
  EXPECT_LT(timer.Millis(), 10.0);
}

TEST(AccumulatingTimer, SumsWindows) {
  AccumulatingTimer timer;
  for (int i = 0; i < 3; ++i) {
    timer.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    timer.Stop();
  }
  EXPECT_GE(timer.TotalSeconds(), 0.010);
  timer.Clear();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(AtomicBitset, SetTestClear) {
  AtomicBitset bits(200);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_TRUE(bits.Set(63));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_FALSE(bits.Set(63));  // second set reports already-set
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
}

TEST(AtomicBitset, CountAndClearAll) {
  AtomicBitset bits(130);
  bits.Set(0);
  bits.Set(64);
  bits.Set(129);
  EXPECT_EQ(bits.Count(), 3u);
  bits.ClearAll();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(AtomicBitset, GrowPreservesBits) {
  AtomicBitset bits(10);
  bits.Set(3);
  bits.Set(9);
  bits.Grow(500);
  EXPECT_EQ(bits.size(), 500u);
  EXPECT_TRUE(bits.Test(3));
  EXPECT_TRUE(bits.Test(9));
  EXPECT_FALSE(bits.Test(100));
  bits.Set(499);
  EXPECT_TRUE(bits.Test(499));
}

TEST(AtomicBitset, ConcurrentSetIsExact) {
  AtomicBitset bits(100000);
  std::atomic<int> claims{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bits, &claims] {
      for (size_t i = 0; i < 100000; ++i) {
        if (bits.Set(i)) {
          claims.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(claims.load(), 100000);  // each bit claimed exactly once
  EXPECT_EQ(bits.Count(), 100000u);
}

TEST(ArgParser, ParsesAllKinds) {
  ArgParser parser("test");
  parser.AddString("name", "default", "a string")
      .AddInt("count", 5, "an int")
      .AddDouble("rate", 0.5, "a double")
      .AddBool("verbose", false, "a bool");
  const char* argv[] = {"prog", "--name", "alice", "--count=12", "--rate", "0.25", "--verbose"};
  ASSERT_TRUE(parser.Parse(7, const_cast<char**>(argv)));
  EXPECT_EQ(parser.GetString("name"), "alice");
  EXPECT_EQ(parser.GetInt("count"), 12);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.25);
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  ArgParser parser("test");
  parser.AddInt("count", 42, "int");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.Parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(parser.GetInt("count"), 42);
}

TEST(ArgParser, RejectsUnknownFlag) {
  ArgParser parser("test");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_FALSE(parser.Parse(3, const_cast<char**>(argv)));
}

TEST(ArgParser, CollectsPositional) {
  ArgParser parser("test");
  parser.AddInt("n", 1, "int");
  const char* argv[] = {"prog", "input.txt", "--n", "3", "more"};
  ASSERT_TRUE(parser.Parse(5, const_cast<char**>(argv)));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.txt");
  EXPECT_EQ(parser.positional()[1], "more");
}

TEST(MemoryAccountant, AddAndTotal) {
  MemoryAccountant& acc = MemoryAccountant::Instance();
  acc.Reset();
  acc.Add("deps", 100);
  acc.Add("deps", 50);
  acc.Add("bits", 8);
  EXPECT_EQ(acc.Total("deps"), 150);
  EXPECT_EQ(acc.Total("bits"), 8);
  EXPECT_EQ(acc.Total("absent"), 0);
  const auto snapshot = acc.Snapshot();
  EXPECT_EQ(snapshot.size(), 2u);
  acc.Reset();
  EXPECT_EQ(acc.Total("deps"), 0);
}

}  // namespace
}  // namespace graphbolt
