#!/usr/bin/env python3
"""Compare a candidate BENCH_*.json against a committed baseline trajectory.

The bench binaries emit ``{"bench": <name>, "rows": [{...}, ...]}`` (see
bench/harness.h BenchJson). This tool matches candidate rows to baseline
rows by their identity fields (every string-valued key, plus any integer
sweep parameters named in --id-keys) and flags metric regressions beyond a
relative threshold.

Metric direction is inferred from the key name:
  lower-is-better:  *_ms, *_seconds, *seconds*, *_latency*
  higher-is-better: *rate*, *speedup*, *throughput*, *per_sec*
Other numeric keys are reported but never fail the run.

Exit codes:
  0   no regression beyond --threshold
  1   at least one regression (or malformed input)
  77  candidate file absent — the ctest SKIP_RETURN_CODE, so machines that
      have not produced fresh bench JSON skip instead of fail

Usage:
  bench_diff.py --baseline BENCH_x.json --candidate BENCH_x.new.json \
      [--threshold 0.10] [--id-keys batch_size,shards]
  bench_diff.py --self-test
"""

import argparse
import json
import os
import sys

LOWER_BETTER_MARKERS = ("_ms", "_seconds", "seconds", "_latency", "_mb", "overhead")
HIGHER_BETTER_MARKERS = ("rate", "speedup", "throughput", "per_sec")


def metric_direction(key):
    """Returns 'lower', 'higher', or None (informational)."""
    k = key.lower()
    if any(k.endswith(m) or m in k for m in LOWER_BETTER_MARKERS):
        return "lower"
    if any(m in k for m in HIGHER_BETTER_MARKERS):
        return "higher"
    return None


def row_identity(row, id_keys):
    ident = tuple(sorted((k, v) for k, v in row.items() if isinstance(v, str)))
    extra = tuple((k, row[k]) for k in id_keys if k in row)
    return ident + extra


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        raise ValueError(f"{path}: no 'rows' array")
    return doc.get("bench", "?"), rows


def compare(baseline_rows, candidate_rows, id_keys, threshold):
    """Returns (regressions, improvements, notes) as lists of messages."""
    baseline_by_id = {}
    for row in baseline_rows:
        baseline_by_id[row_identity(row, id_keys)] = row
    regressions, improvements, notes = [], [], []
    matched = 0
    for row in candidate_rows:
        ident = row_identity(row, id_keys)
        base = baseline_by_id.get(ident)
        if base is None:
            notes.append(f"new row (no baseline): {dict(ident) or row}")
            continue
        matched += 1
        label = ", ".join(f"{k}={v}" for k, v in ident) or "row"
        for key, value in row.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            ref = base.get(key)
            if not isinstance(ref, (int, float)) or isinstance(ref, bool):
                continue
            direction = metric_direction(key)
            if direction is None or ref == 0:
                continue
            change = (value - ref) / abs(ref)
            worse = change > threshold if direction == "lower" else change < -threshold
            better = change < -threshold if direction == "lower" else change > threshold
            msg = (f"[{label}] {key}: baseline {ref:g} -> candidate {value:g} "
                   f"({change:+.1%}, {direction} is better)")
            if worse:
                regressions.append(msg)
            elif better:
                improvements.append(msg)
    if matched == 0:
        notes.append("no candidate row matched a baseline row; check --id-keys")
    return regressions, improvements, notes


def self_test():
    base = [{"graph": "g", "batch_size": 64, "ingest_rate": 100.0, "drain_seconds": 2.0}]
    # Unchanged: pass.
    r, _, _ = compare(base, base, ["batch_size"], 0.10)
    assert not r, r
    # Throughput drop beyond threshold: regression.
    cand = [{"graph": "g", "batch_size": 64, "ingest_rate": 80.0, "drain_seconds": 2.0}]
    r, _, _ = compare(base, cand, ["batch_size"], 0.10)
    assert len(r) == 1, r
    # Latency drop: improvement, not regression.
    cand = [{"graph": "g", "batch_size": 64, "ingest_rate": 100.0, "drain_seconds": 1.0}]
    r, i, _ = compare(base, cand, ["batch_size"], 0.10)
    assert not r and len(i) == 1, (r, i)
    # Within threshold: quiet.
    cand = [{"graph": "g", "batch_size": 64, "ingest_rate": 95.0, "drain_seconds": 2.1}]
    r, i, _ = compare(base, cand, ["batch_size"], 0.10)
    assert not r and not i, (r, i)
    # Different sweep point: unmatched, never compared.
    cand = [{"graph": "g", "batch_size": 256, "ingest_rate": 1.0, "drain_seconds": 99.0}]
    r, _, n = compare(base, cand, ["batch_size"], 0.10)
    assert not r and n, (r, n)
    # Direction inference.
    assert metric_direction("avg_flush_latency_ms") == "lower"
    assert metric_direction("end_to_end_rate") == "higher"
    assert metric_direction("speedup") == "higher"
    assert metric_direction("queue_wait_seconds") == "lower"
    assert metric_direction("dense_mb") == "lower"
    assert metric_direction("compact_overhead") == "lower"
    assert metric_direction("fresh_serve_rate") == "higher"
    assert metric_direction("batches") is None
    assert metric_direction("hi_over_lo") is None
    assert metric_direction("async_reconciles") is None
    print("bench_diff self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", help="committed trajectory JSON")
    parser.add_argument("--candidate", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression tolerance (default 0.10)")
    parser.add_argument("--id-keys", default="batch_size,shards,producers",
                        help="comma-separated numeric keys that identify a row")
    parser.add_argument("--self-test", action="store_true",
                        help="run internal checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("--baseline and --candidate are required (or --self-test)")
    if not os.path.exists(args.candidate):
        print(f"bench_diff: candidate {args.candidate} absent; skipping (exit 77)")
        return 77
    if not os.path.exists(args.baseline):
        print(f"bench_diff: baseline {args.baseline} missing — commit the trajectory first")
        return 1
    id_keys = [k for k in args.id_keys.split(",") if k]
    try:
        base_name, baseline_rows = load_rows(args.baseline)
        cand_name, candidate_rows = load_rows(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"bench_diff: {err}")
        return 1
    if base_name != cand_name:
        print(f"bench_diff: comparing different benches ({base_name} vs {cand_name})")
        return 1
    regressions, improvements, notes = compare(baseline_rows, candidate_rows,
                                               id_keys, args.threshold)
    for msg in notes:
        print(f"note: {msg}")
    for msg in improvements:
        print(f"improvement: {msg}")
    for msg in regressions:
        print(f"REGRESSION: {msg}")
    if regressions:
        print(f"bench_diff: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%} on bench '{base_name}'")
        return 1
    print(f"bench_diff: bench '{base_name}' within {args.threshold:.0%} of baseline "
          f"({len(candidate_rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
