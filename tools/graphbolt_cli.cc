// graphbolt_cli: run any algorithm/engine combination on a graph file or a
// synthetic graph, stream mutation batches, and report per-batch latency
// and work. The adoption entry point for trying the library on real data:
//
//   graphbolt_cli --graph edges.txt --algo pagerank --batches 10 --batch-size 1000
//   graphbolt_cli --rmat-vertices 100000 --rmat-edges 1000000 --algo sssp
//                 --engine graphbolt --source 0 --output dists.txt
//
// Driver configuration goes through DriverConfig (src/shard/driver_config.h):
// one validated surface registered by DriverConfig::RegisterFlags, read back
// by FromCli, with GRAPHBOLT_* environment overrides applied on top by
// FromEnv. --shards N with N > 1 runs the stream through the sharded
// multi-tenant driver (src/shard/sharded_driver.h); N = 1 (the default)
// uses the single-lane StreamDriver.
//
// With --checkpoint-dir the stream journals through the global checkpointer
// (WAL + cadence checkpoints); --verify-recovery then cold-recovers into a
// fresh engine afterwards and exits nonzero unless the recovered values match
// the live ones — bitwise with one worker thread, within a relative 1e-9
// with more (parallel refine applies floating-point scatter contributions
// in schedule order; see docs/INTERNALS.md §10). The sharded driver shares
// the protocol, so recovery of a sharded run goes through the same cold
// unsharded path.
//
// The sentinel layer (docs/INTERNALS.md §11-§12) is armed by
// --quarantine-dir (admission control + dead-letter WAL; tune with
// --max-batch-edges, demo with --poison-batches), --watchdog-ms (stall
// watchdog), and the --overflow family. All of it works on both driver
// shapes: under --shards N the watchdog heartbeats per lane, the shed
// policies divert to the shared sequence-tagged shed log, and degrade
// coordinates stale reads across lanes.
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <string>

#include "src/graphbolt.h"
#include "src/parallel/thread_pool.h"
#include "src/util/cli.h"

namespace graphbolt {
namespace {

struct CliConfig {
  std::string engine;
  uint32_t iterations;
  bool convergence;
  double tolerance;
  uint32_t history;
  size_t batches;
  double add_fraction;
  VertexId source;
  std::string output;
  bool verify_recovery;
  size_t poison_batches;
  DriverConfig driver;  // the consolidated driver surface
};

// Writes one value per line ("vertex value...").
template <typename Value>
void WriteScalar(std::ofstream& out, VertexId v, const Value& value) {
  out << v << " " << value << "\n";
}

template <typename T, size_t N>
void WriteScalar(std::ofstream& out, VertexId v, const std::array<T, N>& value) {
  out << v;
  for (const T& x : value) {
    out << " " << x;
  }
  out << "\n";
}

// Recovered-vs-live value comparison. Serial refine is deterministic, so
// with one worker the match must be bitwise (rel = 0). With more workers
// the engines' scatter phases (atomic floating-point aggregation in push
// loops) apply contributions in schedule order, so the replayed run can
// land a few ulps away from the live one; those compare under a relative
// tolerance. Integer-valued algorithms are exact either way.
inline bool ScalarClose(double a, double b, double rel) {
  if (a == b) {
    return true;
  }
  const double diff = a < b ? b - a : a - b;
  const double ma = a < 0 ? -a : a;
  const double mb = b < 0 ? -b : b;
  return diff <= rel * (ma > mb ? ma : mb);
}

template <typename T>
bool ValueClose(const T& a, const T& b, double /*rel*/) {
  return a == b;
}
inline bool ValueClose(const double& a, const double& b, double rel) {
  return ScalarClose(a, b, rel);
}
inline bool ValueClose(const float& a, const float& b, double rel) {
  return ScalarClose(a, b, rel);
}
template <typename T, size_t N>
bool ValueClose(const std::array<T, N>& a, const std::array<T, N>& b, double rel) {
  for (size_t i = 0; i < N; ++i) {
    if (!ValueClose(a[i], b[i], rel)) {
      return false;
    }
  }
  return true;
}

// Cold recovery + diff against the live engine; shared by the sharded and
// unsharded streaming paths (both journal through the same global
// checkpointer protocol, so the unsharded recovery path restores either).
template <typename Engine, typename MakeEngine>
int VerifyRecovery(Engine& engine, MakeEngine&& make_engine, MutableGraph& graph,
                   const DriverConfig& driver_config) {
  Timer recovery;
  MutableGraph cold_graph;
  Engine cold = make_engine(&cold_graph);
  Checkpointer<Engine> restorer(&cold, &cold_graph,
                                {.directory = driver_config.checkpoint_dir,
                                 .cadence_batches = driver_config.checkpoint_every});
  StreamDriver<Engine> cold_driver(&cold, {.checkpointer = &restorer});
  if (!cold_driver.Recover()) {
    std::printf("recovery FAILED: no valid checkpoint in %s\n",
                driver_config.checkpoint_dir.c_str());
    return 1;
  }
  cold_driver.Stop();
  if (cold.values().size() != engine.values().size()) {
    std::printf("recovery FAILED: %zu recovered values vs %zu live\n", cold.values().size(),
                engine.values().size());
    return 1;
  }
  const bool serial = ThreadPool::Instance().num_threads() == 1;
  const double rel = serial ? 0.0 : 1e-9;
  size_t mismatches = 0;
  for (size_t v = 0; v < cold.values().size(); ++v) {
    if (!ValueClose(cold.values()[v], engine.values()[v], rel)) {
      ++mismatches;
    }
  }
  if (mismatches > 0 || cold_graph.num_edges() != graph.num_edges()) {
    std::printf("recovery FAILED: %zu value mismatches (rel tol %.1e), %llu vs %llu edges\n",
                mismatches, rel, static_cast<unsigned long long>(cold_graph.num_edges()),
                static_cast<unsigned long long>(graph.num_edges()));
    return 1;
  }
  std::printf("recovery verified: %zu values %s (%.2f ms)\n", cold.values().size(),
              serial ? "bitwise identical" : "within 1e-9 relative (parallel refine)",
              recovery.Seconds() * 1e3);
  return 0;
}

void PrintFastPath(const EngineStats& stats) {
  std::printf("fast path: %llu safe applied in place, %llu escalated to refinement, "
              "%llu epoch flips\n",
              static_cast<unsigned long long>(stats.fastpath_safe_applied),
              static_cast<unsigned long long>(stats.fastpath_unsafe_escalated),
              static_cast<unsigned long long>(stats.fastpath_epoch_flips));
}

void PrintAsync(const EngineStats& stats) {
  std::printf("async: %llu entries / %llu reconciles, %llu async applies, %llu steps "
              "(%llu priority tasks), %llu async-fresh queries, residual %.3e\n",
              static_cast<unsigned long long>(stats.async_entries),
              static_cast<unsigned long long>(stats.async_reconciles),
              static_cast<unsigned long long>(stats.async_applies),
              static_cast<unsigned long long>(stats.async_steps),
              static_cast<unsigned long long>(stats.tasks_priority),
              static_cast<unsigned long long>(stats.async_fresh_queries),
              stats.async_residual);
}

void PrintDurability(const EngineStats& stats, const DriverConfig& driver) {
  std::printf("durability: %llu checkpoints (%.2f ms), %llu WAL appends, %llu shed, dir %s\n",
              static_cast<unsigned long long>(stats.checkpoints_written),
              stats.checkpoint_seconds * 1e3, static_cast<unsigned long long>(stats.wal_appends),
              static_cast<unsigned long long>(stats.mutations_shed_to_wal),
              driver.checkpoint_dir.c_str());
}

// Streams through a StreamDriver with the durability and/or sentinel layers
// armed (the --shards 1 path). `make_engine` constructs an identically-
// configured engine on a new graph for --verify-recovery.
template <typename Engine, typename MakeEngine>
int StreamDriven(Engine& engine, MakeEngine&& make_engine, MutableGraph& graph,
                 StreamSplit& split, const CliConfig& config) {
  using Driver = StreamDriver<Engine>;
  const bool durable = !config.driver.checkpoint_dir.empty();
  const bool sentinel = !config.driver.quarantine_dir.empty() ||
                        config.driver.watchdog_stall_seconds > 0.0 ||
                        config.driver.overflow == OverflowPolicy::kShedOldest ||
                        config.driver.overflow == OverflowPolicy::kDegrade;

  Timer total;
  engine.InitialCompute();
  std::printf("initial compute: %.2f ms, %llu edge computations, %u iterations\n",
              engine.stats().seconds * 1e3,
              static_cast<unsigned long long>(engine.stats().edges_processed),
              engine.stats().iterations);

  std::optional<Checkpointer<Engine>> checkpointer;
  if (durable) {
    checkpointer.emplace(&engine, &graph,
                         typename Checkpointer<Engine>::Options{
                             .directory = config.driver.checkpoint_dir,
                             .cadence_batches = config.driver.checkpoint_every});
  }
  {
    typename Driver::Options driver_options =
        config.driver.template ToStreamOptions<Engine>(durable ? &*checkpointer : nullptr);
    // The loop below drives flushes explicitly (IngestBatch + Flush +
    // PrepQuery per batch), so the staleness flush and coalescing would
    // only blur the per-batch numbers.
    driver_options.flush_interval_seconds = 3600.0;
    driver_options.coalesce = false;
    Driver driver(&engine, driver_options);
    if (durable) {
      driver.CheckpointNow();  // baseline: recoverable before the first batch
    }

    UpdateStream stream(split.held_back, 99);
    for (size_t b = 0; b < config.batches; ++b) {
      // The barrier below keeps `graph` quiescent here, so batch generation
      // (which inspects it for deletable edges) sees applied state.
      const MutationBatch batch = stream.NextBatch(
          graph, {.size = config.driver.batch_size, .add_fraction = config.add_fraction});
      size_t accepted = 0;
      if (config.driver.fast_path) {
        // Single-update serving: each mutation classifies against the
        // dependency store and splices in place when safe; unsafe ones
        // escalate into the gutter and drain at the flush below.
        for (const EdgeMutation& m : batch) {
          accepted += driver.IngestFast(m) ? 1 : 0;
        }
      } else {
        accepted = driver.IngestBatch(batch);
      }
      driver.Flush();
      driver.PrepQuery();
      std::printf("batch %zu: %zu/%zu mutations, refine %.2f ms, structure %.2f ms\n", b + 1,
                  accepted, batch.size(), engine.stats().seconds * 1e3,
                  engine.stats().mutation_seconds * 1e3);
    }
    // Demo of the poison path: deliberately malformed batches (NaN weights)
    // that admission control must bounce into the dead-letter WAL.
    if (config.poison_batches > 0 && !config.driver.quarantine_dir.empty()) {
      const float nan = std::numeric_limits<float>::quiet_NaN();
      for (size_t p = 0; p < config.poison_batches; ++p) {
        MutationBatch poison = {EdgeMutation::Add(1, static_cast<VertexId>(2 + p), nan)};
        driver.IngestBatch(poison);
      }
      std::printf("poison: %zu bad batches offered, %llu parked in %s\n", config.poison_batches,
                  static_cast<unsigned long long>(driver.quarantined_batches()),
                  driver.quarantine()->path().c_str());
    }
    driver.Stop();
    const EngineStats stats = driver.stats();
    if (config.driver.fast_path) {
      PrintFastPath(stats);
    }
    if (durable) {
      PrintDurability(stats, config.driver);
    }
    if (sentinel) {
      std::printf(
          "sentinel: %llu quarantined batches (%llu mutations), %llu shed-oldest evictions, "
          "%llu degraded entries / %llu degraded queries, %llu stalls / %llu auto-recoveries, "
          "apply EWMA %.2f ms\n",
          static_cast<unsigned long long>(stats.batches_quarantined),
          static_cast<unsigned long long>(stats.mutations_quarantined),
          static_cast<unsigned long long>(stats.shed_oldest_evictions),
          static_cast<unsigned long long>(stats.degraded_entries),
          static_cast<unsigned long long>(stats.degraded_queries),
          static_cast<unsigned long long>(stats.stalls_detected),
          static_cast<unsigned long long>(stats.watchdog_recoveries),
          stats.apply_ewma_seconds * 1e3);
    }
    if (config.driver.async_mode != AsyncModePolicy::kOff) {
      PrintAsync(stats);
    }
  }
  std::printf("total wall time: %.2f ms; final graph: %u vertices, %llu edges\n",
              total.Seconds() * 1e3, graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  if (config.verify_recovery) {
    return VerifyRecovery(engine, make_engine, graph, config.driver);
  }
  return 0;
}

// Streams through the sharded multi-tenant driver (--shards N > 1): one
// session carries the stream, lanes stage + promote, and the two-phase
// barrier closes each batch.
template <typename Engine, typename MakeEngine>
int ShardedStreamDriven(Engine& engine, MakeEngine&& make_engine, MutableGraph& graph,
                        StreamSplit& split, const CliConfig& config) {
  const bool durable = !config.driver.checkpoint_dir.empty();
  const bool sentinel = !config.driver.quarantine_dir.empty() ||
                        config.driver.watchdog_stall_seconds > 0.0 ||
                        config.driver.overflow == OverflowPolicy::kShedOldest ||
                        config.driver.overflow == OverflowPolicy::kDegrade;

  Timer total;
  engine.InitialCompute();
  std::printf("initial compute: %.2f ms, %llu edge computations, %u iterations\n",
              engine.stats().seconds * 1e3,
              static_cast<unsigned long long>(engine.stats().edges_processed),
              engine.stats().iterations);

  std::optional<Checkpointer<Engine>> checkpointer;
  if (durable) {
    checkpointer.emplace(&engine, &graph,
                         typename Checkpointer<Engine>::Options{
                             .directory = config.driver.checkpoint_dir,
                             .cadence_batches = config.driver.checkpoint_every});
  }
  {
    DriverConfig driver_config = config.driver;
    driver_config.flush_interval_seconds = 3600.0;  // explicit driving, as above
    driver_config.coalesce = false;
    ShardedDriver<Engine> driver(&engine, driver_config,
                                 durable ? &*checkpointer : nullptr);
    if (durable) {
      driver.CheckpointNow();
    }
    auto session = driver.OpenSession("cli");

    UpdateStream stream(split.held_back, 99);
    for (size_t b = 0; b < config.batches; ++b) {
      const MutationBatch batch = stream.NextBatch(
          graph, {.size = config.driver.batch_size, .add_fraction = config.add_fraction});
      size_t accepted = 0;
      if (config.driver.fast_path) {
        // Same single-update serving shape as the unsharded path: safe
        // splices bypass the lanes entirely, unsafe ones route to their
        // home lane as micro-batches.
        for (const EdgeMutation& m : batch) {
          accepted += session.IngestFast(m) ? 1 : 0;
        }
      } else {
        accepted = session.IngestBatch(batch);
      }
      driver.Flush();
      driver.PrepQuery();
      std::printf("batch %zu: %zu/%zu mutations, refine %.2f ms, structure %.2f ms\n", b + 1,
                  accepted, batch.size(), engine.stats().seconds * 1e3,
                  engine.stats().mutation_seconds * 1e3);
    }
    if (config.poison_batches > 0 && !config.driver.quarantine_dir.empty()) {
      const float nan = std::numeric_limits<float>::quiet_NaN();
      for (size_t p = 0; p < config.poison_batches; ++p) {
        MutationBatch poison = {EdgeMutation::Add(1, static_cast<VertexId>(2 + p), nan)};
        session.IngestBatch(poison);
      }
      std::printf("poison: %zu bad batches offered, %llu parked in %s\n", config.poison_batches,
                  static_cast<unsigned long long>(driver.quarantined_batches()),
                  driver.quarantine()->path().c_str());
    }
    driver.Stop();
    const EngineStats stats = driver.stats();
    std::printf("shards: %llu lanes, %llu batches staged, %llu shard-WAL appends, "
                "%llu cross-shard mutations, %llu sessions\n",
                static_cast<unsigned long long>(stats.shard_lanes),
                static_cast<unsigned long long>(stats.shard_batches_staged),
                static_cast<unsigned long long>(stats.shard_wal_appends),
                static_cast<unsigned long long>(stats.cross_shard_mutations),
                static_cast<unsigned long long>(stats.sessions_opened));
    if (config.driver.fast_path) {
      PrintFastPath(stats);
    }
    if (durable) {
      PrintDurability(stats, config.driver);
    }
    if (sentinel) {
      std::printf(
          "sentinel: %llu quarantined batches (%llu mutations), %llu shed-oldest evictions, "
          "%llu degraded entries / %llu degraded queries, %llu stalls / %llu auto-recoveries, "
          "apply EWMA %.2f ms\n",
          static_cast<unsigned long long>(stats.batches_quarantined),
          static_cast<unsigned long long>(stats.mutations_quarantined),
          static_cast<unsigned long long>(stats.shed_oldest_evictions),
          static_cast<unsigned long long>(stats.degraded_entries),
          static_cast<unsigned long long>(stats.degraded_queries),
          static_cast<unsigned long long>(stats.stalls_detected),
          static_cast<unsigned long long>(stats.watchdog_recoveries),
          stats.apply_ewma_seconds * 1e3);
    }
    if (config.driver.async_mode != AsyncModePolicy::kOff) {
      PrintAsync(stats);
    }
  }
  std::printf("total wall time: %.2f ms; final graph: %u vertices, %llu edges\n",
              total.Seconds() * 1e3, graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  if (config.verify_recovery) {
    return VerifyRecovery(engine, make_engine, graph, config.driver);
  }
  return 0;
}

template <typename Engine, typename MakeEngine>
int Stream(Engine& engine, MakeEngine&& make_engine, MutableGraph& graph, StreamSplit& split,
           const CliConfig& config) {
  if (config.driver.shards > 1) {
    return ShardedStreamDriven(engine, make_engine, graph, split, config);
  }
  if (!config.driver.checkpoint_dir.empty() || !config.driver.quarantine_dir.empty() ||
      config.driver.watchdog_stall_seconds > 0.0 || config.driver.fast_path) {
    return StreamDriven(engine, make_engine, graph, split, config);
  }
  Timer total;
  engine.InitialCompute();
  std::printf("initial compute: %.2f ms, %llu edge computations, %u iterations\n",
              engine.stats().seconds * 1e3,
              static_cast<unsigned long long>(engine.stats().edges_processed),
              engine.stats().iterations);

  UpdateStream stream(split.held_back, 99);
  for (size_t b = 0; b < config.batches; ++b) {
    const MutationBatch batch = stream.NextBatch(
        graph, {.size = config.driver.batch_size, .add_fraction = config.add_fraction});
    engine.ApplyMutations(batch);
    std::printf("batch %zu: %zu mutations, refine %.2f ms, structure %.2f ms, %llu edge comps\n",
                b + 1, batch.size(), engine.stats().seconds * 1e3,
                engine.stats().mutation_seconds * 1e3,
                static_cast<unsigned long long>(engine.stats().edges_processed));
  }
  std::printf("total wall time: %.2f ms; final graph: %u vertices, %llu edges\n",
              total.Seconds() * 1e3, graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  if (!config.output.empty()) {
    std::ofstream out(config.output);
    if (!out) {
      std::printf("cannot write %s\n", config.output.c_str());
      return 1;
    }
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      WriteScalar(out, v, engine.values()[v]);
    }
    std::printf("values written to %s\n", config.output.c_str());
  }
  return 0;
}

template <typename Algo>
int Dispatch(Algo algo, MutableGraph& graph, StreamSplit& split, const CliConfig& config) {
  // `algo` is copied into both the live engine and the make-lambda so
  // --verify-recovery can construct an identically-configured cold engine.
  if (config.engine == "graphbolt") {
    const typename GraphBoltEngine<Algo>::Options options{.max_iterations = config.iterations,
                                                          .run_to_convergence = config.convergence,
                                                          .history_size = config.history};
    GraphBoltEngine<Algo> engine(&graph, algo, options);
    auto make = [=](MutableGraph* g) { return GraphBoltEngine<Algo>(g, algo, options); };
    return Stream(engine, make, graph, split, config);
  }
  if (config.engine == "graphbolt-compact") {
    using Engine = GraphBoltEngine<Algo, CompactDependencyStore<typename Algo::Aggregate>>;
    const typename Engine::Options options{.max_iterations = config.iterations,
                                           .run_to_convergence = config.convergence,
                                           .history_size = config.history};
    Engine engine(&graph, algo, options);
    auto make = [=](MutableGraph* g) { return Engine(g, algo, options); };
    return Stream(engine, make, graph, split, config);
  }
  if (config.engine == "reset") {
    const typename ResetEngine<Algo>::Options options{.max_iterations = config.iterations,
                                                      .run_to_convergence = config.convergence};
    ResetEngine<Algo> engine(&graph, algo, options);
    auto make = [=](MutableGraph* g) { return ResetEngine<Algo>(g, algo, options); };
    return Stream(engine, make, graph, split, config);
  }
  if (config.engine == "ligra") {
    const typename LigraEngine<Algo>::Options options{.max_iterations = config.iterations,
                                                      .run_to_convergence = config.convergence};
    LigraEngine<Algo> engine(&graph, algo, options);
    auto make = [=](MutableGraph* g) { return LigraEngine<Algo>(g, algo, options); };
    return Stream(engine, make, graph, split, config);
  }
  std::printf("unknown engine: %s (graphbolt | graphbolt-compact | reset | ligra)\n", config.engine.c_str());
  return 1;
}

// `graphbolt_cli fsck <dir> [--repair]` — offline integrity check over a
// durability directory: the checkpoint chain, the global journal, the shed
// log, the quarantine dead-letter log, and every per-lane shard lineage,
// verified with the same predicates recovery uses (src/fault/fsck.h).
// Exit 0 = every artifact would load; 1 = corruption found (and, with
// --repair, anything left unrepairable); 2 = usage error.
int FsckMain(int argc, char** argv) {
  std::string dir;
  bool repair = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repair") {
      repair = true;
    } else if (!arg.empty() && arg[0] != '-' && dir.empty()) {
      dir = arg;
    } else {
      std::printf("usage: graphbolt_cli fsck <checkpoint-dir> [--repair]\n");
      return 2;
    }
  }
  if (dir.empty()) {
    std::printf("usage: graphbolt_cli fsck <checkpoint-dir> [--repair]\n");
    return 2;
  }
  FsckReport report = FsckDirectory(dir);
  std::printf("fsck %s: %llu checkpoints (%llu valid), %llu WAL lineages "
              "(%llu intact records)\n",
              dir.c_str(),
              static_cast<unsigned long long>(report.checkpoints_checked),
              static_cast<unsigned long long>(report.checkpoints_valid),
              static_cast<unsigned long long>(report.wals_checked),
              static_cast<unsigned long long>(report.wal_records_valid));
  for (const FsckIssue& issue : report.issues) {
    const char* kind = issue.kind == FsckIssue::Kind::kCorruptCheckpoint
                           ? "corrupt checkpoint"
                           : issue.kind == FsckIssue::Kind::kCorruptWal
                                 ? "corrupt WAL"
                                 : "orphan tmp";
    std::printf("  %s: %s (%s)\n", kind, issue.path.c_str(), issue.detail.c_str());
  }
  if (report.clean()) {
    std::printf("fsck: clean\n");
    return 0;
  }
  if (!repair) {
    std::printf("fsck: %zu issue(s); rerun with --repair to quarantine/truncate\n",
                report.issues.size());
    return 1;
  }
  const size_t repaired = FsckRepair(report);
  FsckReport after = FsckDirectory(dir);
  std::printf("fsck: repaired %zu of %zu issue(s); directory is now %s\n",
              repaired, report.issues.size(), after.clean() ? "clean" : "STILL CORRUPT");
  return after.clean() ? 0 : 1;
}

// `graphbolt_cli fsck-selftest <dir>` (hidden) — the cli_fsck ctest. Builds
// a real durability directory (two checkpoints, a journal, a lane lineage),
// seeds the three corruption classes (checkpoint bit flip, WAL bit flip,
// orphaned .tmp), then asserts the full contract: fsck detects exactly what
// it should, --repair narrows the directory to a loadable state, a second
// pass is clean, and the runtime's own RestoreLatest agrees by restoring
// the surviving checkpoint.
int FsckSelftestMain(const std::string& dir) {
  ThreadPool::SetNumThreads(1);
  using Engine = GraphBoltEngine<PageRank>;
  StorageEnv* env = StorageEnv::Default();
  env->CreateDirectories(dir);
  {
    EdgeList initial = GenerateRmat(128, 500, {.seed = 5});
    MutableGraph graph(initial);
    Engine engine(&graph, PageRank{});
    engine.InitialCompute();
    Checkpointer<Engine> ckpt(&engine, &graph,
                              {.directory = dir, .cadence_batches = 0, .keep = 2});
    MutationBatch batch;
    batch.push_back(EdgeMutation::Add(1, 2));
    if (!ckpt.WriteCheckpoint(1)) return 1;
    if (!ckpt.AppendWal(2, batch)) return 1;
    engine.ApplyMutations(batch);
    if (!ckpt.WriteCheckpoint(2)) return 1;
    WriteAheadLog lane;
    lane.Open(dir + "/shard-0.wal", env);
    if (!lane.Append(2, batch)) return 1;
  }
  if (!FsckDirectory(dir).clean()) {
    std::printf("fsck-selftest: pristine directory flagged\n");
    return 1;
  }
  // Seed the three corruption classes.
  const std::string newest = dir + "/checkpoint-00000000000000000002.ckpt";
  if (!FaultyEnv::FlipByteOnDisk(newest, 120, 0x20) ||
      !FaultyEnv::FlipByteOnDisk(dir + "/shard-0.wal", 25, 0x04)) {
    std::printf("fsck-selftest: could not seed bit flips\n");
    return 1;
  }
  if (auto tmp = env->NewWritableFile(newest + ".tmp", /*truncate=*/true)) {
    tmp->Write("x", 1);
    tmp->Close();
  }
  FsckReport before = FsckDirectory(dir);
  if (before.issues.size() != 3) {
    std::printf("fsck-selftest: expected 3 issues, found %zu\n", before.issues.size());
    return 1;
  }
  if (FsckRepair(before) != 3 || !FsckDirectory(dir).clean()) {
    std::printf("fsck-selftest: repair did not converge to clean\n");
    return 1;
  }
  // The runtime must agree with fsck: restore lands on the survivor.
  MutableGraph graph;
  Engine engine(&graph, PageRank{});
  Checkpointer<Engine> ckpt(&engine, &graph,
                            {.directory = dir, .cadence_batches = 0, .keep = 2});
  uint64_t seq = 0;
  if (!ckpt.RestoreLatest(&seq) || seq != 1) {
    std::printf("fsck-selftest: post-repair restore failed (seq %llu)\n",
                static_cast<unsigned long long>(seq));
    return 1;
  }
  std::printf("fsck-selftest: ok (3 seeded corruptions detected, repaired, restored seq 1)\n");
  return 0;
}

int Main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "fsck") {
    return FsckMain(argc - 2, argv + 2);
  }
  if (argc >= 3 && std::string(argv[1]) == "fsck-selftest") {
    return FsckSelftestMain(argv[2]);
  }
  ArgParser args("graphbolt_cli: streaming graph analytics runner");
  args.AddString("graph", "", "edge-list file; empty = synthetic R-MAT");
  args.AddInt("rmat-vertices", 50000, "synthetic graph vertices");
  args.AddInt("rmat-edges", 500000, "synthetic graph edges");
  args.AddBool("weighted", true, "assign random weights to synthetic edges");
  args.AddString("algo", "pagerank",
                 "pagerank | ppr | lp | coem | bp | cf | sssp | bfs | cc | widest | reach | tc");
  args.AddString("engine", "graphbolt", "graphbolt | graphbolt-compact | reset | ligra");
  args.AddInt("iterations", 10, "max iterations");
  args.AddBool("convergence", false, "stop when values stop changing");
  args.AddDouble("tolerance", 1e-6, "selective-scheduling change tolerance");
  args.AddInt("history", 1 << 30, "dependency history size (horizontal pruning)");
  args.AddInt("batches", 5, "mutation batches to stream");
  args.AddDouble("add-fraction", 0.7, "fraction of mutations that are additions");
  args.AddDouble("load-fraction", 0.5, "fraction of edges loaded before streaming");
  args.AddInt("source", 0, "source vertex for sssp/bfs/widest/ppr");
  args.AddInt("threads", 0, "worker threads (0 = hardware)");
  args.AddString("output", "", "write final per-vertex values to this file");
  args.AddBool("verify-recovery", false,
               "after streaming, cold-recover from --checkpoint-dir and diff bitwise");
  args.AddInt("poison-batches", 0,
              "offer this many deliberately malformed batches (demo of --quarantine-dir)");
  // The canonical driver surface: --shards, --batch-size, --flush-ms,
  // --max-pending-batches, --overflow, --coalesce, --bg-compaction,
  // --maintenance-budget, --checkpoint-dir, --checkpoint-every,
  // --quarantine-dir, --max-batch-edges, --watchdog-ms, --default-quota,
  // --tenant-quotas.
  DriverConfig::RegisterFlags(args);
  if (!args.Parse(argc, argv)) {
    return 1;
  }

  DriverConfig driver_config;
  std::string config_error;
  if (!driver_config.FromCli(args, &config_error) ||
      !driver_config.FromEnv(&config_error)) {
    std::printf("driver config: %s\n", config_error.c_str());
    return 1;
  }
  if (args.GetBool("verify-recovery") && driver_config.checkpoint_dir.empty()) {
    std::printf("--verify-recovery requires --checkpoint-dir\n");
    return 1;
  }

  if (args.GetInt("threads") > 0) {
    ThreadPool::SetNumThreads(static_cast<size_t>(args.GetInt("threads")));
  }

  EdgeList full;
  if (!args.GetString("graph").empty()) {
    bool ok = false;
    full = LoadEdgeListText(args.GetString("graph"), &ok);
    if (!ok) {
      return 1;
    }
  } else {
    full = GenerateRmat(static_cast<VertexId>(args.GetInt("rmat-vertices")),
                        static_cast<EdgeIndex>(args.GetInt("rmat-edges")),
                        {.seed = 1, .assign_random_weights = args.GetBool("weighted")});
  }
  std::printf("graph: %u vertices, %zu edges\n", full.num_vertices(), full.num_edges());

  StreamSplit split = SplitForStreaming(full, args.GetDouble("load-fraction"), 2);
  MutableGraph graph(split.initial);

  CliConfig config{
      .engine = args.GetString("engine"),
      .iterations = static_cast<uint32_t>(args.GetInt("iterations")),
      .convergence = args.GetBool("convergence"),
      .tolerance = args.GetDouble("tolerance"),
      .history = static_cast<uint32_t>(args.GetInt("history")),
      .batches = static_cast<size_t>(args.GetInt("batches")),
      .add_fraction = args.GetDouble("add-fraction"),
      .source = static_cast<VertexId>(args.GetInt("source")),
      .output = args.GetString("output"),
      .verify_recovery = args.GetBool("verify-recovery"),
      .poison_batches = static_cast<size_t>(args.GetInt("poison-batches")),
      .driver = driver_config,
  };

  const std::string algo = args.GetString("algo");
  const VertexId n = full.num_vertices();
  const double tol = config.tolerance;
  if (algo == "pagerank") {
    return Dispatch(PageRank(0.85, tol), graph, split, config);
  }
  if (algo == "ppr") {
    return Dispatch(PersonalizedPageRank({config.source}, n, 0.85, tol), graph, split, config);
  }
  if (algo == "lp") {
    return Dispatch(LabelPropagation<3>(n, 0.1, 7, tol), graph, split, config);
  }
  if (algo == "coem") {
    return Dispatch(CoEM(n, 0.05, 11, tol), graph, split, config);
  }
  if (algo == "bp") {
    return Dispatch(BeliefPropagation<3>(13, tol), graph, split, config);
  }
  if (algo == "cf") {
    return Dispatch(CollaborativeFiltering<4>(0.05, 17, tol), graph, split, config);
  }
  if (algo == "sssp" || algo == "bfs" || algo == "widest" || algo == "cc" ||
      algo == "reach") {
    config.convergence = true;
    config.iterations = std::max<uint32_t>(config.iterations, 512);
    if (algo == "sssp") {
      return Dispatch(Sssp(config.source), graph, split, config);
    }
    if (algo == "bfs") {
      return Dispatch(Bfs(config.source), graph, split, config);
    }
    if (algo == "widest") {
      return Dispatch(WidestPath(config.source), graph, split, config);
    }
    if (algo == "reach") {
      return Dispatch(MultiSourceReach({config.source}, n), graph, split, config);
    }
    return Dispatch(ConnectedComponents{}, graph, split, config);
  }
  if (algo == "tc") {
    TriangleCountingEngine engine(&graph);
    engine.InitialCompute();
    std::printf("initial triangles: %llu (%.2f ms)\n",
                static_cast<unsigned long long>(engine.count()), engine.stats().seconds * 1e3);
    UpdateStream stream(split.held_back, 99);
    for (size_t b = 0; b < config.batches; ++b) {
      const MutationBatch batch = stream.NextBatch(
          graph, {.size = config.driver.batch_size, .add_fraction = config.add_fraction});
      engine.ApplyMutations(batch);
      std::printf("batch %zu: triangles %llu, adjust %.2f ms\n", b + 1,
                  static_cast<unsigned long long>(engine.count()), engine.stats().seconds * 1e3);
    }
    return 0;
  }
  std::printf("unknown algorithm: %s\n", algo.c_str());
  return 1;
}

}  // namespace
}  // namespace graphbolt

int main(int argc, char** argv) { return graphbolt::Main(argc, argv); }
