// graphbolt_cli: run any algorithm/engine combination on a graph file or a
// synthetic graph, stream mutation batches, and report per-batch latency
// and work. The adoption entry point for trying the library on real data:
//
//   graphbolt_cli --graph edges.txt --algo pagerank --batches 10 --batch-size 1000
//   graphbolt_cli --rmat-vertices 100000 --rmat-edges 1000000 --algo sssp \
//                 --engine graphbolt --source 0 --output dists.txt
#include <cstdio>
#include <fstream>
#include <string>

#include "src/graphbolt.h"
#include "src/parallel/thread_pool.h"
#include "src/util/cli.h"

namespace graphbolt {
namespace {

struct CliConfig {
  std::string engine;
  uint32_t iterations;
  bool convergence;
  double tolerance;
  uint32_t history;
  size_t batches;
  size_t batch_size;
  double add_fraction;
  VertexId source;
  std::string output;
};

// Writes one value per line ("vertex value...").
template <typename Value>
void WriteScalar(std::ofstream& out, VertexId v, const Value& value) {
  out << v << " " << value << "\n";
}

template <typename T, size_t N>
void WriteScalar(std::ofstream& out, VertexId v, const std::array<T, N>& value) {
  out << v;
  for (const T& x : value) {
    out << " " << x;
  }
  out << "\n";
}

template <typename Engine>
int Stream(Engine& engine, MutableGraph& graph, StreamSplit& split, const CliConfig& config) {
  Timer total;
  engine.InitialCompute();
  std::printf("initial compute: %.2f ms, %llu edge computations, %u iterations\n",
              engine.stats().seconds * 1e3,
              static_cast<unsigned long long>(engine.stats().edges_processed),
              engine.stats().iterations);

  UpdateStream stream(split.held_back, 99);
  for (size_t b = 0; b < config.batches; ++b) {
    const MutationBatch batch =
        stream.NextBatch(graph, {.size = config.batch_size, .add_fraction = config.add_fraction});
    engine.ApplyMutations(batch);
    std::printf("batch %zu: %zu mutations, refine %.2f ms, structure %.2f ms, %llu edge comps\n",
                b + 1, batch.size(), engine.stats().seconds * 1e3,
                engine.stats().mutation_seconds * 1e3,
                static_cast<unsigned long long>(engine.stats().edges_processed));
  }
  std::printf("total wall time: %.2f ms; final graph: %u vertices, %llu edges\n",
              total.Seconds() * 1e3, graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()));

  if (!config.output.empty()) {
    std::ofstream out(config.output);
    if (!out) {
      std::printf("cannot write %s\n", config.output.c_str());
      return 1;
    }
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      WriteScalar(out, v, engine.values()[v]);
    }
    std::printf("values written to %s\n", config.output.c_str());
  }
  return 0;
}

template <typename Algo>
int Dispatch(Algo algo, MutableGraph& graph, StreamSplit& split, const CliConfig& config) {
  if (config.engine == "graphbolt") {
    GraphBoltEngine<Algo> engine(&graph, std::move(algo),
                                 {.max_iterations = config.iterations,
                                  .run_to_convergence = config.convergence,
                                  .history_size = config.history});
    return Stream(engine, graph, split, config);
  }
  if (config.engine == "graphbolt-compact") {
    GraphBoltEngine<Algo, CompactDependencyStore<typename Algo::Aggregate>> engine(
        &graph, std::move(algo),
        {.max_iterations = config.iterations,
         .run_to_convergence = config.convergence,
         .history_size = config.history});
    return Stream(engine, graph, split, config);
  }
  if (config.engine == "reset") {
    ResetEngine<Algo> engine(&graph, std::move(algo),
                             {.max_iterations = config.iterations,
                              .run_to_convergence = config.convergence});
    return Stream(engine, graph, split, config);
  }
  if (config.engine == "ligra") {
    LigraEngine<Algo> engine(&graph, std::move(algo),
                             {.max_iterations = config.iterations,
                              .run_to_convergence = config.convergence});
    return Stream(engine, graph, split, config);
  }
  std::printf("unknown engine: %s (graphbolt | graphbolt-compact | reset | ligra)\n", config.engine.c_str());
  return 1;
}

int Main(int argc, char** argv) {
  ArgParser args("graphbolt_cli: streaming graph analytics runner");
  args.AddString("graph", "", "edge-list file; empty = synthetic R-MAT");
  args.AddInt("rmat-vertices", 50000, "synthetic graph vertices");
  args.AddInt("rmat-edges", 500000, "synthetic graph edges");
  args.AddBool("weighted", true, "assign random weights to synthetic edges");
  args.AddString("algo", "pagerank",
                 "pagerank | ppr | lp | coem | bp | cf | sssp | bfs | cc | widest | reach | tc");
  args.AddString("engine", "graphbolt", "graphbolt | graphbolt-compact | reset | ligra");
  args.AddInt("iterations", 10, "max iterations");
  args.AddBool("convergence", false, "stop when values stop changing");
  args.AddDouble("tolerance", 1e-6, "selective-scheduling change tolerance");
  args.AddInt("history", 1 << 30, "dependency history size (horizontal pruning)");
  args.AddInt("batches", 5, "mutation batches to stream");
  args.AddInt("batch-size", 1000, "mutations per batch");
  args.AddDouble("add-fraction", 0.7, "fraction of mutations that are additions");
  args.AddDouble("load-fraction", 0.5, "fraction of edges loaded before streaming");
  args.AddInt("source", 0, "source vertex for sssp/bfs/widest/ppr");
  args.AddInt("threads", 0, "worker threads (0 = hardware)");
  args.AddString("output", "", "write final per-vertex values to this file");
  if (!args.Parse(argc, argv)) {
    return 1;
  }

  if (args.GetInt("threads") > 0) {
    ThreadPool::SetNumThreads(static_cast<size_t>(args.GetInt("threads")));
  }

  EdgeList full;
  if (!args.GetString("graph").empty()) {
    bool ok = false;
    full = LoadEdgeListText(args.GetString("graph"), &ok);
    if (!ok) {
      return 1;
    }
  } else {
    full = GenerateRmat(static_cast<VertexId>(args.GetInt("rmat-vertices")),
                        static_cast<EdgeIndex>(args.GetInt("rmat-edges")),
                        {.seed = 1, .assign_random_weights = args.GetBool("weighted")});
  }
  std::printf("graph: %u vertices, %zu edges\n", full.num_vertices(), full.num_edges());

  StreamSplit split = SplitForStreaming(full, args.GetDouble("load-fraction"), 2);
  MutableGraph graph(split.initial);

  CliConfig config{
      .engine = args.GetString("engine"),
      .iterations = static_cast<uint32_t>(args.GetInt("iterations")),
      .convergence = args.GetBool("convergence"),
      .tolerance = args.GetDouble("tolerance"),
      .history = static_cast<uint32_t>(args.GetInt("history")),
      .batches = static_cast<size_t>(args.GetInt("batches")),
      .batch_size = static_cast<size_t>(args.GetInt("batch-size")),
      .add_fraction = args.GetDouble("add-fraction"),
      .source = static_cast<VertexId>(args.GetInt("source")),
      .output = args.GetString("output"),
  };

  const std::string algo = args.GetString("algo");
  const VertexId n = full.num_vertices();
  const double tol = config.tolerance;
  if (algo == "pagerank") {
    return Dispatch(PageRank(0.85, tol), graph, split, config);
  }
  if (algo == "ppr") {
    return Dispatch(PersonalizedPageRank({config.source}, n, 0.85, tol), graph, split, config);
  }
  if (algo == "lp") {
    return Dispatch(LabelPropagation<3>(n, 0.1, 7, tol), graph, split, config);
  }
  if (algo == "coem") {
    return Dispatch(CoEM(n, 0.05, 11, tol), graph, split, config);
  }
  if (algo == "bp") {
    return Dispatch(BeliefPropagation<3>(13, tol), graph, split, config);
  }
  if (algo == "cf") {
    return Dispatch(CollaborativeFiltering<4>(0.05, 17, tol), graph, split, config);
  }
  if (algo == "sssp" || algo == "bfs" || algo == "widest" || algo == "cc" ||
      algo == "reach") {
    config.convergence = true;
    config.iterations = std::max<uint32_t>(config.iterations, 512);
    if (algo == "sssp") {
      return Dispatch(Sssp(config.source), graph, split, config);
    }
    if (algo == "bfs") {
      return Dispatch(Bfs(config.source), graph, split, config);
    }
    if (algo == "widest") {
      return Dispatch(WidestPath(config.source), graph, split, config);
    }
    if (algo == "reach") {
      return Dispatch(MultiSourceReach({config.source}, n), graph, split, config);
    }
    return Dispatch(ConnectedComponents{}, graph, split, config);
  }
  if (algo == "tc") {
    TriangleCountingEngine engine(&graph);
    engine.InitialCompute();
    std::printf("initial triangles: %llu (%.2f ms)\n",
                static_cast<unsigned long long>(engine.count()), engine.stats().seconds * 1e3);
    UpdateStream stream(split.held_back, 99);
    for (size_t b = 0; b < config.batches; ++b) {
      const MutationBatch batch = stream.NextBatch(
          graph, {.size = config.batch_size, .add_fraction = config.add_fraction});
      engine.ApplyMutations(batch);
      std::printf("batch %zu: triangles %llu, adjust %.2f ms\n", b + 1,
                  static_cast<unsigned long long>(engine.count()), engine.stats().seconds * 1e3);
    }
    return 0;
  }
  std::printf("unknown algorithm: %s\n", algo.c_str());
  return 1;
}

}  // namespace
}  // namespace graphbolt

int main(int argc, char** argv) { return graphbolt::Main(argc, argv); }
