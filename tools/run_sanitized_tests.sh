#!/usr/bin/env bash
# Runs the concurrency + fault + graph test tiers under AddressSanitizer,
# ThreadSanitizer, and UndefinedBehaviorSanitizer. These are the tiers that
# exercise the StreamDriver pipeline, fault-injection sites,
# checkpoint/recovery paths, the sentinel layer (admission / quarantine /
# watchdog), and the slack-CSR in-place mutation arena (pointer arithmetic
# + parallel splices: prime sanitizer material), so they are the ones most
# likely to hide races, lifetime bugs, or UB.
#
# Usage:
#   tools/run_sanitized_tests.sh            # all three sanitizers
#   tools/run_sanitized_tests.sh address    # just one
#
# Each sanitizer gets its own build tree (build-asan/, build-tsan/,
# build-ubsan/) next to the source so the regular build/ stays untouched.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZERS=("$@")
if [[ ${#SANITIZERS[@]} -eq 0 ]]; then
  SANITIZERS=(address thread undefined)
fi

# Test targets carrying the `concurrency`, `fault`, `graph`, `parallel`, or
# `chaos` ctest labels (see tests/CMakeLists.txt and tools/CMakeLists.txt).
# The `parallel` tier is the work-stealing runtime: the Chase-Lev deque and
# the fork-join scheduler are exactly the code whose correctness *is* its
# memory ordering, so TSan here is load-bearing, not belt-and-braces. The
# `chaos` tier (crash harness, storage faults, fsck) runs under ASan/UBSan
# only: crash_harness_test forks without exec'ing, and TSan's runtime is not
# async-signal/fork safe — a TSan child deadlocking in the allocator would
# read as a hang, not a finding.
TARGETS=(driver_test shard_test shard_sentinel_test fastpath_test parallel_test
         task_arena_test async_engine_test fault_recovery_test
         store_serialization_test sentinel_test graph_test mutable_graph_test
         slack_csr_fuzz_test storage_fault_test crash_harness_test
         graphbolt_cli example_streaming_service)

for san in "${SANITIZERS[@]}"; do
  case "$san" in
    address) dir=build-asan ;;
    thread) dir=build-tsan ;;
    undefined) dir=build-ubsan ;;
    *) dir="build-$san" ;;
  esac
  echo "=== sanitizer: $san (build dir: $dir) ==="
  case "$san" in
    # Fork-based chaos tests are excluded from TSan (see TARGETS comment).
    thread) labels="concurrency|fault|graph|parallel" ;;
    *) labels="concurrency|fault|graph|parallel|chaos" ;;
  esac
  cmake -B "$dir" -S . -DGRAPHBOLT_SANITIZE="$san" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$dir" -j "$(nproc)" --target "${TARGETS[@]}"
  # UBSan reports are printed-and-continue by default; halt_on_error turns
  # any finding into a test failure so CI cannot scroll past it.
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir "$dir" -L "$labels" --output-on-failure -j "$(nproc)"
  echo "=== $san: OK ==="
done
