// Micro-benchmarks (google-benchmark) for the primitives the engines are
// built from: atomic aggregation ops, parallel loops, CSR construction and
// two-pass mutation, dense/sparse iteration, and dependency-store
// snapshots. These are not in the paper; they exist to catch performance
// regressions in the substrate.
#include <benchmark/benchmark.h>

#include "src/algorithms/pagerank.h"
#include "src/core/dependency_store.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/edge_map.h"
#include "src/engine/ligra_engine.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include <functional>

#include "src/parallel/atomics.h"
#include "src/parallel/parallel_for.h"
#include "src/parallel/thread_pool.h"
#include "src/util/random.h"

namespace graphbolt {
namespace {

void BM_AtomicAddDouble(benchmark::State& state) {
  double cell = 0.0;
  for (auto _ : state) {
    AtomicAdd(&cell, 1.0);
  }
  benchmark::DoNotOptimize(cell);
}
BENCHMARK(BM_AtomicAddDouble);

void BM_AtomicMinDouble(benchmark::State& state) {
  double cell = 1e30;
  double candidate = 1e29;
  for (auto _ : state) {
    AtomicMin(&cell, candidate);
    candidate *= 0.999999;
  }
  benchmark::DoNotOptimize(cell);
}
BENCHMARK(BM_AtomicMinDouble);

void BM_ParallelForOverhead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> data(n, 1.0);
  for (auto _ : state) {
    ParallelFor(0, n, [&data](size_t i) { data[i] = data[i] * 1.0000001 + 0.1; });
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// The same loop through the legacy boxed-body shim: one std::function
// (type-erased) call per chunk, the indirection every loop in the old
// runtime paid. Compare against BM_ParallelForOverhead (template dispatch,
// body inlined into the range tasks) at equal n.
void BM_ParallelForBoxedShim(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> data(n, 1.0);
  const std::function<void(size_t, size_t)> body = [&data](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      data[i] = data[i] * 1.0000001 + 0.1;
    }
  };
  for (auto _ : state) {
    ThreadPool::Instance().ParallelForChunked(0, n, kDefaultGrain, body);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForBoxedShim)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// Per-chunk dispatch cost isolated: tiny chunks (grain 1) maximize the
// number of boxed calls, making the erasure overhead visible even when the
// loop body is trivial.
void BM_ParallelForChunkDispatchTemplate(benchmark::State& state) {
  const size_t n = 4096;
  std::vector<uint32_t> data(n, 1);
  for (auto _ : state) {
    ParallelForChunks(0, n, [&data](size_t lo, size_t) { data[lo] += 1; },
                      /*grain=*/1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForChunkDispatchTemplate);

void BM_ParallelForChunkDispatchBoxed(benchmark::State& state) {
  const size_t n = 4096;
  std::vector<uint32_t> data(n, 1);
  const std::function<void(size_t, size_t)> body = [&data](size_t lo, size_t) {
    data[lo] += 1;
  };
  for (auto _ : state) {
    ThreadPool::Instance().ParallelForChunked(0, n, /*grain=*/1, body);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * static_cast<int64_t>(n));
}
BENCHMARK(BM_ParallelForChunkDispatchBoxed);

void BM_CsrConstruction(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  EdgeList list = GenerateRmat(n, static_cast<EdgeIndex>(n) * 12, {.seed = 1});
  for (auto _ : state) {
    Csr csr = Csr::FromEdges(list.num_vertices(), list.edges());
    benchmark::DoNotOptimize(csr.num_edges());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(list.num_edges()));
}
BENCHMARK(BM_CsrConstruction)->Arg(1 << 12)->Arg(1 << 15);

void BM_TwoPassMutation(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  EdgeList list = GenerateRmat(1 << 15, 1 << 18, {.seed = 2});
  MutableGraph graph(list);
  Rng rng(3);
  for (auto _ : state) {
    MutationBatch batch;
    batch.reserve(batch_size);
    for (size_t i = 0; i < batch_size; ++i) {
      const auto src = static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
      const auto dst = static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
      batch.push_back(rng.NextDouble() < 0.5 ? EdgeMutation::Add(src, dst)
                                             : EdgeMutation::Delete(src, dst));
    }
    benchmark::DoNotOptimize(graph.ApplyBatch(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_TwoPassMutation)->Arg(100)->Arg(10000);

void BM_DensePageRankIteration(benchmark::State& state) {
  EdgeList list = GenerateRmat(1 << 14, 1 << 17, {.seed = 4});
  MutableGraph graph(list);
  LigraEngine<PageRank> engine(&graph, PageRank{}, {.max_iterations = 1});
  for (auto _ : state) {
    engine.InitialCompute();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(graph.num_edges()));
}
BENCHMARK(BM_DensePageRankIteration);

void BM_GraphBoltSingleEdgeRefine(benchmark::State& state) {
  EdgeList list = GenerateRmat(1 << 14, 1 << 17, {.seed = 5});
  MutableGraph graph(list);
  GraphBoltEngine<PageRank> engine(&graph, PageRank{});
  engine.InitialCompute();
  Rng rng(6);
  for (auto _ : state) {
    const auto src = static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
    const auto dst = static_cast<VertexId>(rng.NextBounded(graph.num_vertices()));
    engine.ApplyMutations({EdgeMutation::Add(src, dst)});
  }
}
BENCHMARK(BM_GraphBoltSingleEdgeRefine)->Unit(benchmark::kMillisecond);

// A pull-direction edgeMap chain, unfused: every step pays
// FrontierBuilder::Take's O(universe) sparse pack even though the next step
// reads the frontier only through its dense bitset.
void BM_EdgeMapDenseChainTake(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  EdgeList list = GenerateRmat(n, static_cast<EdgeIndex>(n) * 8, {.seed = 7});
  MutableGraph graph(list);
  const auto keep = [](VertexId, VertexId v, Weight) { return (v & 1) == 0; };
  for (auto _ : state) {
    VertexSubset frontier = VertexSubset::All(graph.num_vertices());
    for (int step = 0; step < 4; ++step) {
      frontier = EdgeMapDense(graph, frontier, keep);
    }
    benchmark::DoNotOptimize(frontier.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4 *
                          static_cast<int64_t>(graph.num_edges()));
}
BENCHMARK(BM_EdgeMapDenseChainTake)->Arg(1 << 14)->Arg(1 << 17);

// The same chain with EdgeMapOptions::dense_result: each step hands the
// claim bitset over as the subset's authoritative dense view (TakeDense —
// an O(universe/64) word copy) and no sparse member list is ever built.
void BM_EdgeMapDenseChainFused(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  EdgeList list = GenerateRmat(n, static_cast<EdgeIndex>(n) * 8, {.seed = 7});
  MutableGraph graph(list);
  const auto keep = [](VertexId, VertexId v, Weight) { return (v & 1) == 0; };
  for (auto _ : state) {
    VertexSubset frontier = VertexSubset::All(graph.num_vertices());
    for (int step = 0; step < 4; ++step) {
      frontier = EdgeMapDense(graph, frontier, keep, /*dense_result=*/true);
    }
    benchmark::DoNotOptimize(frontier.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4 *
                          static_cast<int64_t>(graph.num_edges()));
}
BENCHMARK(BM_EdgeMapDenseChainFused)->Arg(1 << 14)->Arg(1 << 17);

void BM_DependencyStoreSnapshot(benchmark::State& state) {
  const auto n = static_cast<VertexId>(state.range(0));
  DependencyStore<double> store;
  std::vector<double> aggregates(n, 1.0);
  for (auto _ : state) {
    state.PauseTiming();
    store.Reset(n, 64);
    state.ResumeTiming();
    for (uint32_t level = 1; level <= 10; ++level) {
      store.SnapshotLevel(level, aggregates, AtomicBitset(n));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10 *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DependencyStoreSnapshot)->Arg(1 << 14)->Arg(1 << 17);

}  // namespace
}  // namespace graphbolt

BENCHMARK_MAIN();
