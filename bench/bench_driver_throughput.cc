// Driver ingestion throughput: batch-size sweep on the single-lane
// StreamDriver, a shard-count sweep on the ShardedDriver, and the
// single-update serving-latency sweep (fast path vs. batch-size-1
// flush-to-barrier).
//
// Not a paper table: the paper's harness hand-feeds pre-built batches, so
// this measures what the driver subsystem adds — the rate at which
// individual edge mutations can be pushed through Ingest() while
// background workers keep the engine refined, and the price of the final
// PrepQuery() drain. The batch-size sweep exposes the pipeline trade-off:
// small batches keep the snapshot fresh but pay per-batch refinement
// overhead; large batches amortize it and raise throughput. The shard
// sweep (1/2/4/8 lanes, one producer session per lane) measures what lane
// parallelism buys when staging is concurrent but promotion still
// serializes on the one BSP engine; it emits BENCH_shard_scaling.json for
// tools/bench_diff.py to compare against the committed trajectory. The
// latency sweep streams provably-safe single-edge mutations through
// IngestFast (splice in place, no barrier) and through the batched path at
// batch size 1 (Ingest + Flush + PrepQuery), reporting p50/p99
// update→queryable latency per algorithm; it emits
// BENCH_fastpath_latency.json for the same trajectory guard. The async
// freshness sweep (INTERNALS §14) floods a kDegrade driver past its
// governor and compares what degraded queries observe with the async
// delta tier off (frozen BSP snapshots) vs engaged (continuously-updating
// eventually-consistent values); it emits BENCH_async_freshness.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/kickstarter/kickstarter_engine.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "src/util/timer.h"

namespace graphbolt {
namespace {

constexpr size_t kBatchSizes[] = {64, 256, 1024, 4096};
constexpr size_t kShardCounts[] = {1, 2, 4, 8};
constexpr size_t kShardSweepBatch = 1024;

struct Row {
  size_t batch_size = 0;
  double ingest_rate = 0.0;     // mutations/sec, first Ingest -> last Ingest
  double end_to_end_rate = 0.0; // mutations/sec including the final drain
  double drain_seconds = 0.0;   // the PrepQuery() barrier after ingestion
  uint64_t batches = 0;
  double avg_flush_latency_ms = 0.0;  // flush -> applied, per batch
  double queue_wait_seconds = 0.0;    // backpressure felt by the producer
};

Row RunOnce(const StreamSplit& split, size_t batch_size) {
  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();

  Row row;
  row.batch_size = batch_size;
  {
    StreamDriver<GraphBoltEngine<PageRank>> driver(
        &engine, {.batch_size = batch_size, .flush_interval_seconds = 0.5});
    Timer total;
    Timer ingest;
    for (const Edge& e : split.held_back) {
      driver.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight));
    }
    const double ingest_seconds = ingest.Seconds();
    Timer drain;
    driver.PrepQuery();
    row.drain_seconds = drain.Seconds();
    const double total_seconds = total.Seconds();

    const double n = static_cast<double>(split.held_back.size());
    row.ingest_rate = n / ingest_seconds;
    row.end_to_end_rate = n / total_seconds;
    const EngineStats stats = driver.stats();
    row.batches = stats.batches_applied;
    row.avg_flush_latency_ms =
        stats.batches_applied == 0
            ? 0.0
            : stats.flush_latency_seconds / static_cast<double>(stats.batches_applied) * 1e3;
    row.queue_wait_seconds = stats.queue_wait_seconds;
  }
  return row;
}

struct ShardRow {
  size_t shards = 0;
  size_t producers = 0;
  double ingest_rate = 0.0;
  double end_to_end_rate = 0.0;
  double drain_seconds = 0.0;
  uint64_t batches = 0;
  uint64_t cross_shard = 0;
};

ShardRow RunSharded(const StreamSplit& split, size_t shards) {
  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();

  ShardRow row;
  row.shards = shards;
  row.producers = shards;  // one producer session per lane
  {
    DriverConfig config;
    config.shards = shards;
    config.batch_size = kShardSweepBatch;
    config.flush_interval_seconds = 0.5;
    ShardedDriver<GraphBoltEngine<PageRank>> driver(&engine, config);

    std::vector<std::vector<Edge>> slices(row.producers);
    for (size_t i = 0; i < split.held_back.size(); ++i) {
      slices[i % row.producers].push_back(split.held_back[i]);
    }
    Timer total;
    Timer ingest;
    std::vector<std::thread> producers;
    for (size_t p = 0; p < row.producers; ++p) {
      producers.emplace_back([&, p] {
        auto session = driver.OpenSession("bench-" + std::to_string(p));
        for (const Edge& e : slices[p]) {
          session.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight));
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    const double ingest_seconds = ingest.Seconds();
    Timer drain;
    driver.PrepQuery();
    row.drain_seconds = drain.Seconds();
    const double total_seconds = total.Seconds();

    const double n = static_cast<double>(split.held_back.size());
    row.ingest_rate = n / ingest_seconds;
    row.end_to_end_rate = n / total_seconds;
    const EngineStats stats = driver.stats();
    row.batches = stats.batches_applied;
    row.cross_shard = stats.cross_shard_mutations;
  }
  return row;
}

// ----- Single-update serving latency (fast path vs. batch size 1) -----------

struct LatencyRow {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  uint64_t safe_applied = 0;
  uint64_t escalated = 0;
};

double PercentileUs(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) {
    return 0.0;
  }
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_us.size() - 1));
  return sorted_us[idx];
}

// Measures update→queryable latency for `updates` single mutations drawn
// round-robin from `safe_updates` (crafted so the engine classifies every
// one of them safe). `fast` routes through IngestFast — the splice itself
// is the queryability point, no barrier. Otherwise each mutation pays the
// full batched pipeline at batch size 1: Ingest (which flushes the
// one-mutation gutter) + PrepQuery (the barrier that makes it queryable).
template <StreamingEngine Engine>
LatencyRow MeasureLatency(Engine& engine, const std::vector<EdgeMutation>& safe_updates,
                          size_t updates, bool fast) {
  engine.InitialCompute();
  StreamDriver<Engine> driver(&engine, {.batch_size = fast ? (1u << 20) : 1,
                                        .flush_interval_seconds = 3600.0,
                                        .fast_path = fast});
  // Untimed warmup: fault in the claim stripes, the gutter, and the pool
  // threads so the timed distribution measures the steady state, not
  // first-touch costs.
  constexpr size_t kWarmup = 256;
  for (size_t i = 0; i < kWarmup; ++i) {
    const EdgeMutation& m = safe_updates[i % safe_updates.size()];
    if (fast) {
      driver.IngestFast(m);
    } else {
      driver.Ingest(m);
      driver.PrepQuery();
    }
  }
  // Three timed repetitions, keeping the one with the lowest p99: on a
  // shared box, scheduler spikes land in the 1% tail of a
  // microsecond-scale distribution easily, and min-of-N measures the code
  // rather than the machine. The trajectory guard additionally enforces the
  // batched/fast *ratio* (see the "advantage" rows), where common-mode
  // load cancels out.
  constexpr int kReps = 3;
  LatencyRow row;
  std::vector<double> latencies_us;
  latencies_us.reserve(updates);
  for (int rep = 0; rep < kReps; ++rep) {
    latencies_us.clear();
    double total_us = 0.0;
    for (size_t i = 0; i < updates; ++i) {
      const EdgeMutation& m = safe_updates[i % safe_updates.size()];
      Timer t;
      if (fast) {
        driver.IngestFast(m);
      } else {
        driver.Ingest(m);
        driver.PrepQuery();
      }
      const double us = t.Seconds() * 1e6;
      latencies_us.push_back(us);
      total_us += us;
    }
    std::sort(latencies_us.begin(), latencies_us.end());
    const double p99 = PercentileUs(latencies_us, 0.99);
    if (rep == 0 || p99 < row.p99_us) {
      row.p50_us = PercentileUs(latencies_us, 0.50);
      row.p99_us = p99;
      row.mean_us = total_us / static_cast<double>(updates);
    }
  }
  driver.PrepQuery();
  const EngineStats stats = driver.stats();
  row.safe_applied = stats.fastpath_safe_applied;
  row.escalated = stats.fastpath_unsafe_escalated;
  return row;
}

// PageRank admits only graph no-ops on the fast path: re-adds of edges
// already present (normalized to nothing, so the batched replay provably
// skips Refine).
std::vector<EdgeMutation> PageRankSafeUpdates(const StreamSplit& split, size_t count) {
  std::vector<EdgeMutation> updates;
  for (size_t i = 0; i < count && i < split.initial.edges().size(); ++i) {
    const Edge& e = split.initial.edges()[i];
    updates.push_back(EdgeMutation::Add(e.src, e.dst, e.weight));
  }
  return updates;
}

// For the SSSP-family engines a real splice is provable: alternately add
// and delete one far-overweight edge into a vertex adjacent to the source.
// The 1e6 relaxation can never beat (or attain) the target's aggregate at
// any tracked level, so both directions classify safe while still paying
// the full adjacency splice.
std::vector<EdgeMutation> HeavyEdgeSafeUpdates(const MutableGraph& graph, VertexId source) {
  const auto nbrs = graph.OutNeighbors(source);
  const VertexId dst = nbrs.empty() ? source + 1 : nbrs[0];
  VertexId src = 0;
  for (VertexId u = 0; u < graph.num_vertices(); ++u) {
    if (u != source && u != dst && !graph.HasEdge(u, dst)) {
      src = u;
      break;
    }
  }
  return {EdgeMutation::Add(src, dst, 1e6f), EdgeMutation::Delete(src, dst)};
}

void RunLatencySweep(BenchJson& json) {
  PrintHeader(
      "Single-update serving latency: provably-safe single-edge mutations\n"
      "through the fast path (classify + splice in place, no barrier) vs.\n"
      "the batched pipeline at batch size 1 (Ingest + flush + PrepQuery\n"
      "barrier). p50/p99 are update→queryable, in microseconds.");

  constexpr size_t kFastUpdates = 8192;
  constexpr size_t kBatchedUpdates = 256;
  std::printf("\n%12s %8s %10s %10s %10s %10s %10s\n", "algo", "mode", "updates", "p50(us)",
              "p99(us)", "mean(us)", "escalated");

  struct Emit {
    const char* algo;
    const char* mode;
    size_t updates;
    LatencyRow row;
  };
  std::vector<Emit> emits;

  {
    const StreamSplit split = MakeStream(kWiki);
    const std::vector<EdgeMutation> safe = PageRankSafeUpdates(split, 512);
    MutableGraph g_fast(split.initial);
    GraphBoltEngine<PageRank> fast_engine(&g_fast, PageRank(0.85, kBenchTolerance));
    emits.push_back({"pagerank", "fast", kFastUpdates,
                     MeasureLatency(fast_engine, safe, kFastUpdates, /*fast=*/true)});
    MutableGraph g_batched(split.initial);
    GraphBoltEngine<PageRank> batched_engine(&g_batched, PageRank(0.85, kBenchTolerance));
    emits.push_back({"pagerank", "batched", kBatchedUpdates,
                     MeasureLatency(batched_engine, safe, kBatchedUpdates, /*fast=*/false)});
  }
  {
    const StreamSplit split = MakeStream(kWiki, /*weighted=*/true);
    MutableGraph g_fast(split.initial);
    const std::vector<EdgeMutation> safe = HeavyEdgeSafeUpdates(g_fast, 0);
    GraphBoltEngine<Sssp> fast_engine(&g_fast, Sssp(0),
                                      {.max_iterations = 128, .run_to_convergence = true});
    emits.push_back({"sssp", "fast", kFastUpdates,
                     MeasureLatency(fast_engine, safe, kFastUpdates, /*fast=*/true)});
    MutableGraph g_batched(split.initial);
    GraphBoltEngine<Sssp> batched_engine(&g_batched, Sssp(0),
                                         {.max_iterations = 128, .run_to_convergence = true});
    emits.push_back({"sssp", "batched", kBatchedUpdates,
                     MeasureLatency(batched_engine, safe, kBatchedUpdates, /*fast=*/false)});
  }
  {
    const StreamSplit split = MakeStream(kWiki, /*weighted=*/true);
    MutableGraph g_fast(split.initial);
    const std::vector<EdgeMutation> safe = HeavyEdgeSafeUpdates(g_fast, 0);
    KickStarterEngine<KsSsspTraits> fast_engine(&g_fast, KsSsspTraits(0));
    emits.push_back({"kickstarter", "fast", kFastUpdates,
                     MeasureLatency(fast_engine, safe, kFastUpdates, /*fast=*/true)});
    MutableGraph g_batched(split.initial);
    KickStarterEngine<KsSsspTraits> batched_engine(&g_batched, KsSsspTraits(0));
    emits.push_back({"kickstarter", "batched", kBatchedUpdates,
                     MeasureLatency(batched_engine, safe, kBatchedUpdates, /*fast=*/false)});
  }

  for (const Emit& e : emits) {
    std::printf("%12s %8s %10zu %10.2f %10.2f %10.2f %10llu\n", e.algo, e.mode, e.updates,
                e.row.p50_us, e.row.p99_us, e.row.mean_us,
                static_cast<unsigned long long>(e.row.escalated));
    json.Row()
        .Str("graph", kWiki.name)
        .Str("algo", e.algo)
        .Str("mode", e.mode)
        .Num("updates", static_cast<double>(e.updates))
        .Num("p50_us", e.row.p50_us)
        .Num("p99_us", e.row.p99_us)
        .Num("mean_us", e.row.mean_us)
        .Num("safe_applied", static_cast<double>(e.row.safe_applied))
        .Num("escalated", static_cast<double>(e.row.escalated));
  }
  // One enforced row per algorithm: bench_diff.py infers metric direction
  // from key names, and the raw `*_us` keys deliberately match no marker
  // (absolute microseconds swing with machine load — informational only).
  // The `*_speedup` ratios are higher-is-better and common-mode noise
  // cancels between the two modes, so the trajectory guard pins those.
  for (size_t i = 0; i + 1 < emits.size(); i += 2) {
    const LatencyRow& fast_row = emits[i].row;
    const LatencyRow& batched_row = emits[i + 1].row;
    const double p50_speedup =
        fast_row.p50_us > 0.0 ? batched_row.p50_us / fast_row.p50_us : 0.0;
    const double p99_speedup =
        fast_row.p99_us > 0.0 ? batched_row.p99_us / fast_row.p99_us : 0.0;
    std::printf("%12s p99 fast-path advantage: %.0fx (p50: %.0fx)\n", emits[i].algo,
                p99_speedup, p50_speedup);
    json.Row()
        .Str("graph", kWiki.name)
        .Str("algo", emits[i].algo)
        .Str("mode", "advantage")
        .Num("p50_speedup", p50_speedup)
        .Num("p99_speedup", p99_speedup);
  }
  std::printf(
      "\nExpected shape: the fast path classifies against the dependency\n"
      "store and splices under the journal lock only — microseconds, flat\n"
      "across algorithms. The batched path at batch size 1 pays the queue\n"
      "handoff plus a full refinement barrier per update — the fast path's\n"
      "p99 should sit >=10x below it. 'escalated' must be 0 in fast mode:\n"
      "these workloads are crafted to be provably safe.\n");
}

// ----- Async freshness under overload (INTERNALS §14) ------------------------

std::vector<MutationBatch> AdditionChunks(const std::vector<Edge>& edges, size_t chunk) {
  std::vector<MutationBatch> out;
  for (size_t i = 0; i < edges.size(); i += chunk) {
    MutationBatch batch;
    for (size_t j = i; j < std::min(i + chunk, edges.size()); ++j) {
      batch.push_back(EdgeMutation::Add(edges[j].src, edges[j].dst, edges[j].weight));
    }
    out.push_back(std::move(batch));
  }
  return out;
}

struct FreshnessRow {
  uint64_t samples = 0;              // degraded queries issued by this sweep
  uint64_t progression_samples = 0;  // samples whose served values had advanced
  EngineStats stats;                 // final driver stats after the drain barrier
};

// Paced overload flood against a kDegrade driver: one 100-edge chunk every
// ~300us versus a ~1.5ms batch apply keeps the pending queue non-empty at
// every governor update, so the degrade window stays open for the whole
// stream (a tight unpaced loop starves the worker on the driver mutex and
// the degrade gutter coalesces the backlog into one batch — no sustained
// pressure). While degraded, PrepQuery serves immediately without draining,
// so sampling it measures what a reader sees mid-overload: with the async
// tier engaged the served values keep moving batch-to-batch; in plain BSP
// degrade they only move when a whole batch promotes.
FreshnessRow RunFreshnessFlood(AsyncModePolicy policy) {
  const EdgeList full = GenerateRmat(800, 30000, {.seed = 401});
  const StreamSplit split = SplitForStreaming(full, 0.2, 402);
  const std::vector<MutationBatch> chunks = AdditionChunks(split.held_back, 100);

  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();

  FreshnessRow row;
  using Driver = StreamDriver<GraphBoltEngine<PageRank>>;
  {
    Driver driver(&engine, {.batch_size = 1u << 20,
                            .flush_interval_seconds = 0.005,
                            .max_pending_batches = 1,
                            .overflow = Driver::OverflowPolicy::kDegrade,
                            .coalesce = false,
                            .governor = {.degrade_pressure_seconds = 0.0,
                                         .recover_pressure_seconds = 0.0},
                            .async_mode = policy,
                            .async_step_budget = 256});
    // Warm the latency EWMA with one normally-applied batch.
    driver.IngestBatch(chunks[0]);
    driver.Flush();
    driver.PrepQuery();

    uint64_t last_counter = 0;
    for (size_t next = 1; next < chunks.size(); ++next) {
      driver.IngestBatch(chunks[next]);
      driver.Flush();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      if (!driver.degraded()) {
        continue;
      }
      driver.PrepQuery();  // degraded serve: non-blocking
      const EngineStats s = driver.stats();
      ++row.samples;
      // Freshness counter: async applies move the served values directly;
      // in BSP degrade only whole-batch promotions do.
      const uint64_t counter = s.async_applies + s.batches_applied;
      if (row.samples > 1 && counter > last_counter) {
        ++row.progression_samples;
      }
      last_counter = counter;
    }
    // Flood over: idle ticks drain pressure and self-clear the mode, then
    // the final barrier reconciles back to an exact BSP snapshot.
    for (int i = 0; i < 1000 && driver.degraded(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    driver.PrepQuery();
    row.stats = driver.stats();
  }
  return row;
}

void RunAsyncFreshnessSweep(BenchJson& json) {
  PrintHeader(
      "Async freshness under overload: a paced flood holds a kDegrade\n"
      "driver in its degrade window while this thread samples degraded\n"
      "PrepQuery serves. 'fresh' = served from continuously-updating async\n"
      "values; 'progressed' = the served values advanced since the last\n"
      "sample. BSP degrade (async off) is the frozen-snapshot baseline.");

  struct Mode {
    const char* name;
    AsyncModePolicy policy;
  };
  const Mode modes[] = {{"bsp-degrade", AsyncModePolicy::kOff},
                        {"async-degrade", AsyncModePolicy::kDegradeOnly}};
  std::printf("\n%14s %9s %11s %8s %8s %11s %11s %9s\n", "mode", "degraded", "fresh", "applies",
              "asyncs", "progressed", "reconciles", "residual");
  for (const Mode& mode : modes) {
    const FreshnessRow row = RunFreshnessFlood(mode.policy);
    const EngineStats& s = row.stats;
    const double fresh_rate =
        s.degraded_queries == 0
            ? 0.0
            : static_cast<double>(s.async_fresh_queries) / static_cast<double>(s.degraded_queries);
    std::printf("%14s %9llu %11llu %8llu %8llu %11llu %11llu %9.3g\n", mode.name,
                static_cast<unsigned long long>(s.degraded_queries),
                static_cast<unsigned long long>(s.async_fresh_queries),
                static_cast<unsigned long long>(s.batches_applied),
                static_cast<unsigned long long>(s.async_applies),
                static_cast<unsigned long long>(row.progression_samples),
                static_cast<unsigned long long>(s.async_reconciles), s.async_residual);
    json.Row()
        .Str("mode", mode.name)
        .Num("degraded_queries", static_cast<double>(s.degraded_queries))
        .Num("fresh_serve_rate", fresh_rate)
        .Num("async_applies", static_cast<double>(s.async_applies))
        .Num("async_entries", static_cast<double>(s.async_entries))
        .Num("async_reconciles", static_cast<double>(s.async_reconciles))
        .Num("progression_samples", static_cast<double>(row.progression_samples))
        .Num("residual_final", s.async_residual);
  }
  std::printf(
      "\nExpected shape: async-degrade serves every degraded query from\n"
      "live values (fresh_serve_rate ~1.0, nonzero async applies and at\n"
      "least one reconcile); bsp-degrade serves frozen snapshots (fresh\n"
      "rate 0). residual must be 0 after the final barrier in both modes.\n");
}

void Run() {
  PrintHeader(
      "StreamDriver throughput: single-producer Ingest() of the held-back\n"
      "addition stream (WK* surrogate, PageRank engine) swept over the\n"
      "gutter batch size. 'ingest' excludes and 'end-to-end' includes the\n"
      "final PrepQuery() drain.");

  const StreamSplit split = MakeStream(kWiki);
  std::printf("\n%10s %14s %14s %10s %8s %12s %12s\n", "batch", "ingest/s", "end-to-end/s",
              "drain(s)", "batches", "flush(ms)", "qwait(s)");
  for (const size_t batch_size : kBatchSizes) {
    const Row row = RunOnce(split, batch_size);
    std::printf("%10zu %14.0f %14.0f %10.3f %8llu %12.2f %12.3f\n", row.batch_size,
                row.ingest_rate, row.end_to_end_rate, row.drain_seconds,
                static_cast<unsigned long long>(row.batches), row.avg_flush_latency_ms,
                row.queue_wait_seconds);
  }
  std::printf(
      "\nExpected shape: ingest and end-to-end rates rise with batch size\n"
      "(per-batch refinement amortizes); flush latency rises with it (a\n"
      "mutation waits longer in the gutter); queue wait shows where the\n"
      "worker, not the producer, is the bottleneck.\n");

  PrintHeader(
      "ShardedDriver scaling: the same stream split across one producer\n"
      "session per lane, swept over the shard count (batch 1024). Lane\n"
      "staging is concurrent; promotion serializes on the engine.");

  BenchJson json("shard_scaling");
  std::printf("\n%10s %10s %14s %14s %10s %8s %12s\n", "shards", "producers", "ingest/s",
              "end-to-end/s", "drain(s)", "batches", "cross-shard");
  for (const size_t shards : kShardCounts) {
    const ShardRow row = RunSharded(split, shards);
    std::printf("%10zu %10zu %14.0f %14.0f %10.3f %8llu %12llu\n", row.shards, row.producers,
                row.ingest_rate, row.end_to_end_rate, row.drain_seconds,
                static_cast<unsigned long long>(row.batches),
                static_cast<unsigned long long>(row.cross_shard));
    json.Row()
        .Str("graph", kWiki.name)
        .Num("shards", static_cast<double>(row.shards))
        .Num("producers", static_cast<double>(row.producers))
        .Num("batch_size", static_cast<double>(kShardSweepBatch))
        .Num("ingest_rate", row.ingest_rate)
        .Num("end_to_end_rate", row.end_to_end_rate)
        .Num("drain_seconds", row.drain_seconds)
        .Num("batches", static_cast<double>(row.batches))
        .Num("cross_shard", static_cast<double>(row.cross_shard));
  }
  const std::string path = json.DefaultPath();
  std::printf("\n%s\n", json.WriteFile(path) ? ("wrote " + path).c_str()
                                             : ("FAILED to write " + path).c_str());
  std::printf(
      "Expected shape: on a many-core box ingest rate rises with lanes\n"
      "until promotion (the serialized engine apply) saturates; on one\n"
      "core the sweep mainly buys ingest-side isolation, not speedup.\n"
      "Cross-shard counts mutations whose endpoints live on different\n"
      "lanes — routed once, by source, never duplicated.\n");

  BenchJson latency_json("fastpath_latency");
  RunLatencySweep(latency_json);
  const std::string latency_path = latency_json.DefaultPath();
  std::printf("\n%s\n", latency_json.WriteFile(latency_path)
                            ? ("wrote " + latency_path).c_str()
                            : ("FAILED to write " + latency_path).c_str());

  BenchJson freshness_json("async_freshness");
  RunAsyncFreshnessSweep(freshness_json);
  const std::string freshness_path = freshness_json.DefaultPath();
  std::printf("\n%s\n", freshness_json.WriteFile(freshness_path)
                            ? ("wrote " + freshness_path).c_str()
                            : ("FAILED to write " + freshness_path).c_str());
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
