// Driver ingestion throughput: batch-size sweep on the single-lane
// StreamDriver, then a shard-count sweep on the ShardedDriver.
//
// Not a paper table: the paper's harness hand-feeds pre-built batches, so
// this measures what the driver subsystem adds — the rate at which
// individual edge mutations can be pushed through Ingest() while
// background workers keep the engine refined, and the price of the final
// PrepQuery() drain. The batch-size sweep exposes the pipeline trade-off:
// small batches keep the snapshot fresh but pay per-batch refinement
// overhead; large batches amortize it and raise throughput. The shard
// sweep (1/2/4/8 lanes, one producer session per lane) measures what lane
// parallelism buys when staging is concurrent but promotion still
// serializes on the one BSP engine; it emits BENCH_shard_scaling.json for
// tools/bench_diff.py to compare against the committed trajectory.
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "src/util/timer.h"

namespace graphbolt {
namespace {

constexpr size_t kBatchSizes[] = {64, 256, 1024, 4096};
constexpr size_t kShardCounts[] = {1, 2, 4, 8};
constexpr size_t kShardSweepBatch = 1024;

struct Row {
  size_t batch_size = 0;
  double ingest_rate = 0.0;     // mutations/sec, first Ingest -> last Ingest
  double end_to_end_rate = 0.0; // mutations/sec including the final drain
  double drain_seconds = 0.0;   // the PrepQuery() barrier after ingestion
  uint64_t batches = 0;
  double avg_flush_latency_ms = 0.0;  // flush -> applied, per batch
  double queue_wait_seconds = 0.0;    // backpressure felt by the producer
};

Row RunOnce(const StreamSplit& split, size_t batch_size) {
  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();

  Row row;
  row.batch_size = batch_size;
  {
    StreamDriver<GraphBoltEngine<PageRank>> driver(
        &engine, {.batch_size = batch_size, .flush_interval_seconds = 0.5});
    Timer total;
    Timer ingest;
    for (const Edge& e : split.held_back) {
      driver.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight));
    }
    const double ingest_seconds = ingest.Seconds();
    Timer drain;
    driver.PrepQuery();
    row.drain_seconds = drain.Seconds();
    const double total_seconds = total.Seconds();

    const double n = static_cast<double>(split.held_back.size());
    row.ingest_rate = n / ingest_seconds;
    row.end_to_end_rate = n / total_seconds;
    const EngineStats stats = driver.stats();
    row.batches = stats.batches_applied;
    row.avg_flush_latency_ms =
        stats.batches_applied == 0
            ? 0.0
            : stats.flush_latency_seconds / static_cast<double>(stats.batches_applied) * 1e3;
    row.queue_wait_seconds = stats.queue_wait_seconds;
  }
  return row;
}

struct ShardRow {
  size_t shards = 0;
  size_t producers = 0;
  double ingest_rate = 0.0;
  double end_to_end_rate = 0.0;
  double drain_seconds = 0.0;
  uint64_t batches = 0;
  uint64_t cross_shard = 0;
};

ShardRow RunSharded(const StreamSplit& split, size_t shards) {
  MutableGraph graph(split.initial);
  GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();

  ShardRow row;
  row.shards = shards;
  row.producers = shards;  // one producer session per lane
  {
    DriverConfig config;
    config.shards = shards;
    config.batch_size = kShardSweepBatch;
    config.flush_interval_seconds = 0.5;
    ShardedDriver<GraphBoltEngine<PageRank>> driver(&engine, config);

    std::vector<std::vector<Edge>> slices(row.producers);
    for (size_t i = 0; i < split.held_back.size(); ++i) {
      slices[i % row.producers].push_back(split.held_back[i]);
    }
    Timer total;
    Timer ingest;
    std::vector<std::thread> producers;
    for (size_t p = 0; p < row.producers; ++p) {
      producers.emplace_back([&, p] {
        auto session = driver.OpenSession("bench-" + std::to_string(p));
        for (const Edge& e : slices[p]) {
          session.Ingest(EdgeMutation::Add(e.src, e.dst, e.weight));
        }
      });
    }
    for (std::thread& t : producers) {
      t.join();
    }
    const double ingest_seconds = ingest.Seconds();
    Timer drain;
    driver.PrepQuery();
    row.drain_seconds = drain.Seconds();
    const double total_seconds = total.Seconds();

    const double n = static_cast<double>(split.held_back.size());
    row.ingest_rate = n / ingest_seconds;
    row.end_to_end_rate = n / total_seconds;
    const EngineStats stats = driver.stats();
    row.batches = stats.batches_applied;
    row.cross_shard = stats.cross_shard_mutations;
  }
  return row;
}

void Run() {
  PrintHeader(
      "StreamDriver throughput: single-producer Ingest() of the held-back\n"
      "addition stream (WK* surrogate, PageRank engine) swept over the\n"
      "gutter batch size. 'ingest' excludes and 'end-to-end' includes the\n"
      "final PrepQuery() drain.");

  const StreamSplit split = MakeStream(kWiki);
  std::printf("\n%10s %14s %14s %10s %8s %12s %12s\n", "batch", "ingest/s", "end-to-end/s",
              "drain(s)", "batches", "flush(ms)", "qwait(s)");
  for (const size_t batch_size : kBatchSizes) {
    const Row row = RunOnce(split, batch_size);
    std::printf("%10zu %14.0f %14.0f %10.3f %8llu %12.2f %12.3f\n", row.batch_size,
                row.ingest_rate, row.end_to_end_rate, row.drain_seconds,
                static_cast<unsigned long long>(row.batches), row.avg_flush_latency_ms,
                row.queue_wait_seconds);
  }
  std::printf(
      "\nExpected shape: ingest and end-to-end rates rise with batch size\n"
      "(per-batch refinement amortizes); flush latency rises with it (a\n"
      "mutation waits longer in the gutter); queue wait shows where the\n"
      "worker, not the producer, is the bottleneck.\n");

  PrintHeader(
      "ShardedDriver scaling: the same stream split across one producer\n"
      "session per lane, swept over the shard count (batch 1024). Lane\n"
      "staging is concurrent; promotion serializes on the engine.");

  BenchJson json("shard_scaling");
  std::printf("\n%10s %10s %14s %14s %10s %8s %12s\n", "shards", "producers", "ingest/s",
              "end-to-end/s", "drain(s)", "batches", "cross-shard");
  for (const size_t shards : kShardCounts) {
    const ShardRow row = RunSharded(split, shards);
    std::printf("%10zu %10zu %14.0f %14.0f %10.3f %8llu %12llu\n", row.shards, row.producers,
                row.ingest_rate, row.end_to_end_rate, row.drain_seconds,
                static_cast<unsigned long long>(row.batches),
                static_cast<unsigned long long>(row.cross_shard));
    json.Row()
        .Str("graph", kWiki.name)
        .Num("shards", static_cast<double>(row.shards))
        .Num("producers", static_cast<double>(row.producers))
        .Num("batch_size", static_cast<double>(kShardSweepBatch))
        .Num("ingest_rate", row.ingest_rate)
        .Num("end_to_end_rate", row.end_to_end_rate)
        .Num("drain_seconds", row.drain_seconds)
        .Num("batches", static_cast<double>(row.batches))
        .Num("cross_shard", static_cast<double>(row.cross_shard));
  }
  const std::string path = json.DefaultPath();
  std::printf("\n%s\n", json.WriteFile(path) ? ("wrote " + path).c_str()
                                             : ("FAILED to write " + path).c_str());
  std::printf(
      "Expected shape: on a many-core box ingest rate rises with lanes\n"
      "until promotion (the serialized engine apply) saturates; on one\n"
      "core the sweep mainly buys ingest-side isolation, not speedup.\n"
      "Cross-shard counts mutations whose endpoints live on different\n"
      "lanes — routed once, by source, never duplicated.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
