// Checkpoint cadence vs. streaming overhead vs. recovery time.
//
// Not a paper table: GraphBolt itself has no durability story; this measures
// what the ChaosStream subsystem (WAL + cadence checkpoints, src/fault/)
// costs on the ingest path and buys back at recovery. Cadence 0 journals to
// the WAL but never checkpoints (recovery replays the whole log from the
// baseline snapshot); cadence 1 checkpoints every batch (near-zero replay
// tail, maximum write amplification). A second sweep floods a squeezed queue
// under each lossless overflow policy (sentinel layer) and reports where the
// waiting moved. Fault-injection hooks are NOT compiled into this binary —
// GB_FAULT_POINT is the literal `false` — so the numbers also bound the cost
// of the disabled hooks themselves. Both sweeps land in BENCH_recovery.json
// (BenchJson) for CI trend-diffing.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/fault/checkpoint.h"
#include "src/shard/driver_config.h"
#include "src/shard/sharded_driver.h"
#include "src/util/timer.h"

namespace graphbolt {
namespace {

constexpr uint64_t kCadences[] = {0, 1, 4, 16, 64};
// Deliberately NOT a multiple of the larger cadences, so the run ends
// between checkpoints and recovery has a real WAL tail to replay.
constexpr size_t kBatches = 63;
constexpr size_t kBatchSize = 512;
// Overload sweep: the queue is squeezed to this depth so a paced-free flood
// of the same 63 batches actually hits the overflow policy instead of just
// draining through.
constexpr size_t kOverloadQueueDepth = 2;

struct Row {
  uint64_t cadence = 0;
  double stream_seconds = 0.0;      // ingest + barrier, checkpointing driver
  uint64_t checkpoints = 0;
  double checkpoint_ms = 0.0;       // total time inside WriteCheckpoint
  uint64_t wal_appends = 0;
  double recovery_ms = 0.0;         // cold Recover() wall time
  uint64_t replayed = 0;            // WAL-tail batches re-applied by Recover
};

using Engine = GraphBoltEngine<PageRank>;

Row RunOnce(const StreamSplit& split, const std::vector<MutationBatch>& batches,
            uint64_t cadence, const std::string& dir) {
  std::filesystem::remove_all(dir);
  Row row;
  row.cadence = cadence;

  MutableGraph graph(split.initial);
  Engine engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();
  {
    Checkpointer<Engine> checkpointer(&engine, &graph,
                                      {.directory = dir, .cadence_batches = cadence});
    StreamDriver<Engine> driver(&engine, {.batch_size = kBatchSize,
                                          .flush_interval_seconds = 3600.0,
                                          .coalesce = false,
                                          .checkpointer = &checkpointer});
    driver.CheckpointNow();  // baseline snapshot so cadence 0 can recover
    Timer stream;
    for (const MutationBatch& batch : batches) {
      driver.IngestBatch(batch);
      driver.Flush();
    }
    driver.PrepQuery();
    row.stream_seconds = stream.Seconds();
    driver.Stop();
    const EngineStats stats = driver.stats();
    row.checkpoints = stats.checkpoints_written;
    row.checkpoint_ms = stats.checkpoint_seconds * 1e3;
    row.wal_appends = stats.wal_appends;
  }

  // Cold process restart: fresh graph + engine, recover purely from disk.
  MutableGraph cold_graph;
  Engine cold(&cold_graph, PageRank(0.85, kBenchTolerance));
  Checkpointer<Engine> restorer(&cold, &cold_graph,
                                {.directory = dir, .cadence_batches = cadence});
  StreamDriver<Engine> cold_driver(&cold, {.checkpointer = &restorer});
  Timer recovery;
  const bool recovered = cold_driver.Recover();
  row.recovery_ms = recovery.Seconds() * 1e3;
  cold_driver.Stop();
  row.replayed = cold_driver.stats().batches_replayed;
  GB_CHECK(recovered);
  GB_CHECK(cold_graph.num_edges() == graph.num_edges());

  std::filesystem::remove_all(dir);
  return row;
}

// ----- Native sharded recovery (RTO) -----------------------------------------
// Time-to-recover through ShardedDriver::Recover(): checkpoint restore, then
// every lane's WAL lineage scanned in parallel and merged back into the
// global promotion order, then the global journal tail sweep. shards=1
// prices the lane machinery against the unsharded cadence sweep above;
// shards=4 is the scaling claim — the replay tail is scanned lane-parallel,
// so RTO falls as lanes multiply while the recovered state stays bitwise
// identical to the promotion order.

struct RtoRow {
  size_t shards = 0;
  double stream_seconds = 0.0;
  double recovery_ms = 0.0;
  uint64_t lane_replayed = 0;  // batches recovered from lane lineages
  uint64_t replayed_total = 0;
};

RtoRow RunRto(const StreamSplit& split, const std::vector<MutationBatch>& batches,
              size_t shards, const std::string& dir) {
  std::filesystem::remove_all(dir);
  RtoRow row;
  row.shards = shards;

  MutableGraph graph(split.initial);
  Engine engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();
  {
    Checkpointer<Engine> checkpointer(&engine, &graph,
                                      {.directory = dir, .cadence_batches = 16});
    DriverConfig config;
    config.shards = shards;
    config.batch_size = kBatchSize;
    config.flush_interval_seconds = 3600.0;
    config.coalesce = false;
    config.checkpoint_dir = dir;
    ShardedDriver<Engine> driver(&engine, config, &checkpointer);
    driver.CheckpointNow();
    Timer stream;
    for (const MutationBatch& batch : batches) {
      driver.IngestBatch(batch);
      driver.Flush();
    }
    driver.PrepQuery();
    row.stream_seconds = stream.Seconds();
    driver.Stop();
  }

  MutableGraph cold_graph;
  Engine cold(&cold_graph, PageRank(0.85, kBenchTolerance));
  Checkpointer<Engine> restorer(&cold, &cold_graph,
                                {.directory = dir, .cadence_batches = 16});
  DriverConfig config;
  config.shards = shards;
  config.batch_size = kBatchSize;
  config.flush_interval_seconds = 3600.0;
  config.coalesce = false;
  config.checkpoint_dir = dir;
  ShardedDriver<Engine> cold_driver(&cold, config, &restorer);
  Timer recovery;
  const bool recovered = cold_driver.Recover();
  row.recovery_ms = recovery.Seconds() * 1e3;
  const EngineStats stats = cold_driver.stats();
  row.lane_replayed = stats.lane_batches_replayed;
  row.replayed_total = stats.batches_replayed;
  cold_driver.Stop();
  GB_CHECK(recovered);
  GB_CHECK(cold_graph.num_edges() == graph.num_edges());

  std::filesystem::remove_all(dir);
  return row;
}

// ----- Overload / shedding scenario ------------------------------------------
// Floods a depth-2 queue with the full batch stream (no pacing, no barriers
// between batches) under each lossless overflow policy, then settles with one
// PrepQuery barrier. kBlock is the backpressure baseline; kShedToWal /
// kShedOldest divert to the durable shed log and replay at the barrier;
// kDegrade coalesces in the gutter and serves the stale snapshot meanwhile.
// All four end bitwise-equal on an addition-only stream, so the interesting
// output is *where the time went* and how much traffic was diverted.

struct OverloadRow {
  const char* policy = "";
  double ingest_seconds = 0.0;   // flood-ingest wall time (producer side)
  double barrier_seconds = 0.0;  // the settling PrepQuery
  uint64_t shed_to_wal = 0;      // mutations diverted to the shed log
  uint64_t shed_replayed = 0;    // shed batches re-applied at the barrier
  uint64_t evictions = 0;        // kShedOldest queue evictions
  uint64_t degraded_entries = 0;
  uint64_t degraded_queries = 0;
  double apply_ewma_ms = 0.0;    // governor's view of per-batch apply cost
};

OverloadRow RunOverload(const StreamSplit& split,
                        const std::vector<MutationBatch>& batches,
                        StreamDriver<Engine>::OverflowPolicy policy,
                        const char* policy_name, const std::string& dir) {
  std::filesystem::remove_all(dir);
  OverloadRow row;
  row.policy = policy_name;

  MutableGraph graph(split.initial);
  Engine engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();
  Checkpointer<Engine> checkpointer(&engine, &graph,
                                    {.directory = dir, .cadence_batches = 16});
  StreamDriver<Engine> driver(
      &engine, {.batch_size = kBatchSize,
                .flush_interval_seconds = 3600.0,
                .max_pending_batches = kOverloadQueueDepth,
                .overflow = policy,
                .coalesce = false,
                .checkpointer = &checkpointer,
                // Trip the degraded mode on bench-sized applies: with the
                // default 2 s pressure threshold a sub-millisecond PageRank
                // apply would never register as overload.
                .governor = {.degrade_pressure_seconds = 1e-3,
                             .recover_pressure_seconds = 1e-4}});
  driver.CheckpointNow();

  Timer ingest;
  for (const MutationBatch& batch : batches) {
    driver.IngestBatch(batch);
    driver.Flush();
  }
  row.ingest_seconds = ingest.Seconds();
  Timer barrier;
  driver.PrepQuery();
  // A degraded-mode PrepQuery serves the stale snapshot without draining;
  // poll until the governor's pressure recedes (the queue drains on its own
  // once the flood stops) and a real barrier lands, so barrier_seconds
  // reports the true settle time, not the degraded fast-return.
  for (int i = 0; (driver.degraded() || driver.pending_mutations() > 0) && i < 1000;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    driver.PrepQuery();
  }
  row.barrier_seconds = barrier.Seconds();
  driver.Stop();

  const EngineStats stats = driver.stats();
  row.shed_to_wal = stats.mutations_shed_to_wal;
  row.shed_replayed = stats.shed_batches_replayed;
  row.evictions = stats.shed_oldest_evictions;
  row.degraded_entries = stats.degraded_entries;
  row.degraded_queries = stats.degraded_queries;
  row.apply_ewma_ms = stats.apply_ewma_seconds * 1e3;

  // Every policy here is lossless; on an addition-only stream the final graph
  // is order-independent, so all four must land on the same edge count.
  MutableGraph expected(split.initial);
  for (const MutationBatch& batch : batches) {
    expected.ApplyBatch(batch);
  }
  GB_CHECK(graph.num_edges() == expected.num_edges());

  std::filesystem::remove_all(dir);
  return row;
}

// ----- Sharded overload scenario ---------------------------------------------
// The same flood pushed through ShardedDriver lanes: every lane gets the
// depth-2 queue, the shed log is shared (sequence-tagged, replayed behind the
// global PrepQuery barrier), and the degrade governor coordinates across
// lanes. shards=1 isolates the lane machinery's own cost; shards=4 shows how
// much of the overload the extra lanes absorb before the sentinel engages.

OverloadRow RunShardedOverload(const StreamSplit& split,
                               const std::vector<MutationBatch>& batches,
                               OverflowPolicy policy, const char* policy_name,
                               size_t shards, const std::string& dir) {
  std::filesystem::remove_all(dir);
  OverloadRow row;
  row.policy = policy_name;

  MutableGraph graph(split.initial);
  Engine engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();
  Checkpointer<Engine> checkpointer(&engine, &graph,
                                    {.directory = dir, .cadence_batches = 16});
  DriverConfig config;
  config.shards = shards;
  config.batch_size = kBatchSize;
  config.flush_interval_seconds = 3600.0;
  config.max_pending_batches = kOverloadQueueDepth;
  config.overflow = policy;
  config.coalesce = false;
  config.checkpoint_dir = dir;
  config.governor = {.degrade_pressure_seconds = 1e-3,
                     .recover_pressure_seconds = 1e-4};
  ShardedDriver<Engine> driver(&engine, config, &checkpointer);
  driver.CheckpointNow();

  Timer ingest;
  for (const MutationBatch& batch : batches) {
    driver.IngestBatch(batch);
    driver.Flush();
  }
  row.ingest_seconds = ingest.Seconds();
  Timer barrier;
  driver.PrepQuery();
  for (int i = 0; (driver.degraded() || driver.pending_mutations() > 0) && i < 1000;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    driver.PrepQuery();
  }
  row.barrier_seconds = barrier.Seconds();
  driver.Stop();

  const EngineStats stats = driver.stats();
  row.shed_to_wal = stats.mutations_shed_to_wal;
  row.shed_replayed = stats.shed_batches_replayed;
  row.evictions = stats.shed_oldest_evictions;
  row.degraded_entries = stats.degraded_entries;
  row.degraded_queries = stats.degraded_queries;
  row.apply_ewma_ms = stats.apply_ewma_seconds * 1e3;

  MutableGraph expected(split.initial);
  for (const MutationBatch& batch : batches) {
    expected.ApplyBatch(batch);
  }
  GB_CHECK(graph.num_edges() == expected.num_edges());

  std::filesystem::remove_all(dir);
  return row;
}

void Run() {
  PrintHeader(
      "Checkpoint cadence sweep (WK* surrogate, PageRank engine, 63 batches\n"
      "x 512 mutations). 'stream' is ingest + barrier through a journaling\n"
      "driver; 'recover' is a cold-process Recover() from the same directory\n"
      "afterwards. Cadence 0 = WAL-only (full-log replay).");

  const StreamSplit split = MakeStream(kWiki);
  const std::vector<MutationBatch> batches =
      MakeBatches(split, kBatches, {.size = kBatchSize, .add_fraction = 0.7}, 7);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "graphbolt_bench_recovery").string();

  BenchJson json("recovery");

  std::printf("\n%8s %10s %8s %10s %8s %12s %10s\n", "cadence", "stream(s)", "ckpts",
              "ckpt(ms)", "wal", "recover(ms)", "replayed");
  for (const uint64_t cadence : kCadences) {
    const Row row = RunOnce(split, batches, cadence, dir);
    std::printf("%8llu %10.3f %8llu %10.2f %8llu %12.2f %10llu\n",
                static_cast<unsigned long long>(row.cadence), row.stream_seconds,
                static_cast<unsigned long long>(row.checkpoints), row.checkpoint_ms,
                static_cast<unsigned long long>(row.wal_appends), row.recovery_ms,
                static_cast<unsigned long long>(row.replayed));
    json.Row()
        .Str("mode", "cadence")
        .Num("cadence", static_cast<double>(row.cadence))
        .Num("stream_seconds", row.stream_seconds)
        .Num("checkpoints", static_cast<double>(row.checkpoints))
        .Num("checkpoint_ms", row.checkpoint_ms)
        .Num("wal_appends", static_cast<double>(row.wal_appends))
        .Num("recovery_ms", row.recovery_ms)
        .Num("replayed", static_cast<double>(row.replayed));
  }
  std::printf(
      "\nExpected shape: checkpoint count and checkpoint time fall as the\n"
      "cadence grows while the recovery replay tail (and so recovery time)\n"
      "rises; WAL appends are cadence-independent. The stream column bounds\n"
      "the durability tax over bench_driver_throughput's WAL-free driver.\n");

  PrintHeader(
      "Native sharded recovery (RTO): the same stream through ShardedDriver\n"
      "lanes at cadence 16, then a cold ShardedDriver::Recover() — restore,\n"
      "lane-parallel lineage replay, global tail sweep. The lane column is\n"
      "how many of the replayed batches came back through lane lineages.");

  constexpr size_t kRtoShards[] = {1, 4};
  std::printf("\n%7s %10s %12s %10s %10s\n", "shards", "stream(s)", "recover(ms)",
              "lane", "replayed");
  for (const size_t shards : kRtoShards) {
    const RtoRow row = RunRto(split, batches, shards, dir);
    std::printf("%7zu %10.3f %12.2f %10llu %10llu\n", row.shards, row.stream_seconds,
                row.recovery_ms, static_cast<unsigned long long>(row.lane_replayed),
                static_cast<unsigned long long>(row.replayed_total));
    json.Row()
        .Str("mode", "rto")
        .Num("shards", static_cast<double>(row.shards))
        .Num("stream_seconds", row.stream_seconds)
        .Num("recovery_ms", row.recovery_ms)
        .Num("lane_batches_replayed", static_cast<double>(row.lane_replayed))
        .Num("replayed", static_cast<double>(row.replayed_total));
  }
  std::printf(
      "\nExpected shape: RTO falls (or at worst holds) from shards=1 to\n"
      "shards=4 — the replay tail is scanned lane-parallel — while the\n"
      "recovered edge count stays identical to the live run's.\n");

  PrintHeader(
      "Overload / shedding sweep: same stream (additions only) flooded into\n"
      "a depth-2 queue with no pacing, one settling barrier at the end. All\n"
      "policies are lossless; the sweep measures where the waiting moved.");

  const std::vector<MutationBatch> flood =
      MakeBatches(split, kBatches, {.size = kBatchSize, .add_fraction = 1.0}, 11);
  using Overflow = StreamDriver<Engine>::OverflowPolicy;
  constexpr struct {
    Overflow policy;
    const char* name;
  } kPolicies[] = {{Overflow::kBlock, "block"},
                   {Overflow::kShedToWal, "shed-to-wal"},
                   {Overflow::kShedOldest, "shed-oldest"},
                   {Overflow::kDegrade, "degrade"}};

  std::printf("\n%12s %10s %11s %8s %9s %7s %9s %9s %9s\n", "policy", "ingest(s)",
              "barrier(s)", "shed", "replayed", "evict", "degr.in", "degr.qry",
              "ewma(ms)");
  for (const auto& entry : kPolicies) {
    const OverloadRow row = RunOverload(split, flood, entry.policy, entry.name, dir);
    std::printf("%12s %10.3f %11.3f %8llu %9llu %7llu %9llu %9llu %9.3f\n", row.policy,
                row.ingest_seconds, row.barrier_seconds,
                static_cast<unsigned long long>(row.shed_to_wal),
                static_cast<unsigned long long>(row.shed_replayed),
                static_cast<unsigned long long>(row.evictions),
                static_cast<unsigned long long>(row.degraded_entries),
                static_cast<unsigned long long>(row.degraded_queries),
                row.apply_ewma_ms);
    json.Row()
        .Str("mode", "overload")
        .Str("policy", row.policy)
        .Num("ingest_seconds", row.ingest_seconds)
        .Num("barrier_seconds", row.barrier_seconds)
        .Num("mutations_shed_to_wal", static_cast<double>(row.shed_to_wal))
        .Num("shed_batches_replayed", static_cast<double>(row.shed_replayed))
        .Num("shed_oldest_evictions", static_cast<double>(row.evictions))
        .Num("degraded_entries", static_cast<double>(row.degraded_entries))
        .Num("degraded_queries", static_cast<double>(row.degraded_queries))
        .Num("apply_ewma_ms", row.apply_ewma_ms);
  }
  std::printf(
      "\nExpected shape: kBlock pays in ingest (producer stalls), the shed\n"
      "policies pay at the barrier (replay of the diverted tail), kDegrade\n"
      "pays nothing up front and defers coalesced work to the barrier.\n");

  PrintHeader(
      "Sharded overload sweep: the same flood through ShardedDriver lanes\n"
      "(shared shed log, lane-coordinated degrade, global replay barrier).\n"
      "shards=1 prices the lane machinery; shards=4 shows lanes absorbing\n"
      "overload before the sentinel engages.");

  constexpr size_t kShardCounts[] = {1, 4};
  constexpr struct {
    OverflowPolicy policy;
    const char* name;
  } kShardedPolicies[] = {{OverflowPolicy::kBlock, "block"},
                          {OverflowPolicy::kShedToWal, "shed-to-wal"},
                          {OverflowPolicy::kShedOldest, "shed-oldest"},
                          {OverflowPolicy::kDegrade, "degrade"}};
  std::printf("\n%7s %12s %10s %11s %8s %9s %7s %9s %9s\n", "shards", "policy",
              "ingest(s)", "barrier(s)", "shed", "replayed", "evict", "degr.in",
              "degr.qry");
  for (const size_t shards : kShardCounts) {
    for (const auto& entry : kShardedPolicies) {
      const OverloadRow row =
          RunShardedOverload(split, flood, entry.policy, entry.name, shards, dir);
      std::printf("%7zu %12s %10.3f %11.3f %8llu %9llu %7llu %9llu %9llu\n", shards,
                  row.policy, row.ingest_seconds, row.barrier_seconds,
                  static_cast<unsigned long long>(row.shed_to_wal),
                  static_cast<unsigned long long>(row.shed_replayed),
                  static_cast<unsigned long long>(row.evictions),
                  static_cast<unsigned long long>(row.degraded_entries),
                  static_cast<unsigned long long>(row.degraded_queries));
      json.Row()
          .Str("mode", "overload-sharded")
          .Str("policy", row.policy)
          .Num("shards", static_cast<double>(shards))
          .Num("ingest_seconds", row.ingest_seconds)
          .Num("barrier_seconds", row.barrier_seconds)
          .Num("mutations_shed_to_wal", static_cast<double>(row.shed_to_wal))
          .Num("shed_batches_replayed", static_cast<double>(row.shed_replayed))
          .Num("shed_oldest_evictions", static_cast<double>(row.evictions))
          .Num("degraded_entries", static_cast<double>(row.degraded_entries))
          .Num("degraded_queries", static_cast<double>(row.degraded_queries));
    }
  }

  const std::string json_path = json.DefaultPath();
  if (json.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("FAILED to write %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
