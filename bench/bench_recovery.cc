// Checkpoint cadence vs. streaming overhead vs. recovery time.
//
// Not a paper table: GraphBolt itself has no durability story; this measures
// what the ChaosStream subsystem (WAL + cadence checkpoints, src/fault/)
// costs on the ingest path and buys back at recovery. Cadence 0 journals to
// the WAL but never checkpoints (recovery replays the whole log from the
// baseline snapshot); cadence 1 checkpoints every batch (near-zero replay
// tail, maximum write amplification). Fault-injection hooks are NOT compiled
// into this binary — GB_FAULT_POINT is the literal `false` — so the numbers
// also bound the cost of the disabled hooks themselves.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/driver/stream_driver.h"
#include "src/fault/checkpoint.h"
#include "src/util/timer.h"

namespace graphbolt {
namespace {

constexpr uint64_t kCadences[] = {0, 1, 4, 16, 64};
// Deliberately NOT a multiple of the larger cadences, so the run ends
// between checkpoints and recovery has a real WAL tail to replay.
constexpr size_t kBatches = 63;
constexpr size_t kBatchSize = 512;

struct Row {
  uint64_t cadence = 0;
  double stream_seconds = 0.0;      // ingest + barrier, checkpointing driver
  uint64_t checkpoints = 0;
  double checkpoint_ms = 0.0;       // total time inside WriteCheckpoint
  uint64_t wal_appends = 0;
  double recovery_ms = 0.0;         // cold Recover() wall time
  uint64_t replayed = 0;            // WAL-tail batches re-applied by Recover
};

using Engine = GraphBoltEngine<PageRank>;

Row RunOnce(const StreamSplit& split, const std::vector<MutationBatch>& batches,
            uint64_t cadence, const std::string& dir) {
  std::filesystem::remove_all(dir);
  Row row;
  row.cadence = cadence;

  MutableGraph graph(split.initial);
  Engine engine(&graph, PageRank(0.85, kBenchTolerance));
  engine.InitialCompute();
  {
    Checkpointer<Engine> checkpointer(&engine, &graph,
                                      {.directory = dir, .cadence_batches = cadence});
    StreamDriver<Engine> driver(&engine, {.batch_size = kBatchSize,
                                          .flush_interval_seconds = 3600.0,
                                          .coalesce = false,
                                          .checkpointer = &checkpointer});
    driver.CheckpointNow();  // baseline snapshot so cadence 0 can recover
    Timer stream;
    for (const MutationBatch& batch : batches) {
      driver.IngestBatch(batch);
      driver.Flush();
    }
    driver.PrepQuery();
    row.stream_seconds = stream.Seconds();
    driver.Stop();
    const EngineStats stats = driver.stats();
    row.checkpoints = stats.checkpoints_written;
    row.checkpoint_ms = stats.checkpoint_seconds * 1e3;
    row.wal_appends = stats.wal_appends;
  }

  // Cold process restart: fresh graph + engine, recover purely from disk.
  MutableGraph cold_graph;
  Engine cold(&cold_graph, PageRank(0.85, kBenchTolerance));
  Checkpointer<Engine> restorer(&cold, &cold_graph,
                                {.directory = dir, .cadence_batches = cadence});
  StreamDriver<Engine> cold_driver(&cold, {.checkpointer = &restorer});
  Timer recovery;
  const bool recovered = cold_driver.Recover();
  row.recovery_ms = recovery.Seconds() * 1e3;
  cold_driver.Stop();
  row.replayed = cold_driver.stats().batches_replayed;
  GB_CHECK(recovered);
  GB_CHECK(cold_graph.num_edges() == graph.num_edges());

  std::filesystem::remove_all(dir);
  return row;
}

void Run() {
  PrintHeader(
      "Checkpoint cadence sweep (WK* surrogate, PageRank engine, 63 batches\n"
      "x 512 mutations). 'stream' is ingest + barrier through a journaling\n"
      "driver; 'recover' is a cold-process Recover() from the same directory\n"
      "afterwards. Cadence 0 = WAL-only (full-log replay).");

  const StreamSplit split = MakeStream(kWiki);
  const std::vector<MutationBatch> batches =
      MakeBatches(split, kBatches, {.size = kBatchSize, .add_fraction = 0.7}, 7);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "graphbolt_bench_recovery").string();

  std::printf("\n%8s %10s %8s %10s %8s %12s %10s\n", "cadence", "stream(s)", "ckpts",
              "ckpt(ms)", "wal", "recover(ms)", "replayed");
  for (const uint64_t cadence : kCadences) {
    const Row row = RunOnce(split, batches, cadence, dir);
    std::printf("%8llu %10.3f %8llu %10.2f %8llu %12.2f %10llu\n",
                static_cast<unsigned long long>(row.cadence), row.stream_seconds,
                static_cast<unsigned long long>(row.checkpoints), row.checkpoint_ms,
                static_cast<unsigned long long>(row.wal_appends), row.recovery_ms,
                static_cast<unsigned long long>(row.replayed));
  }
  std::printf(
      "\nExpected shape: checkpoint count and checkpoint time fall as the\n"
      "cadence grows while the recovery replay tail (and so recovery time)\n"
      "rises; WAL appends are cadence-independent. The stream column bounds\n"
      "the durability tax over bench_driver_throughput's WAL-free driver.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
