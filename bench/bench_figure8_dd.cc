// Reproduces Figure 8: PageRank against the Differential Dataflow
// comparator (src/minidd).
//   8a: per-batch time vs batch size for DD, GraphBolt-RP (retract +
//       propagate pairs) and GraphBolt (combined delta).
//   8b: variance over 100 consecutive single-edge mutations (DD's time
//       varies wildly with how much intermediate state a change touches;
//       GraphBolt's iteration-structured refinement is far steadier).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"
#include "src/minidd/dataflow.h"
#include "src/util/timer.h"

namespace graphbolt {
namespace {

constexpr size_t kSweep[] = {1, 10, 100, 1000, 10000};

void Run() {
  PrintHeader(
      "Figure 8a: PageRank per-batch time (ms) vs batch size —\n"
      "Differential Dataflow (minidd) vs GraphBolt-RP vs GraphBolt.");

  const Surrogate surrogate{"TT*", 25000, 350000, 161};
  StreamSplit split = MakeStream(surrogate);

  std::printf("%-8s %14s %16s %14s\n", "batch", "DiffDataflow", "GraphBolt-RP", "GraphBolt");
  for (const size_t size : kSweep) {
    const auto batches = MakeBatches(split, 2, {.size = size, .add_fraction = 0.6}, 162);

    double dd_time = 0.0;
    {
      DdPageRank dd(split.initial, 10, 0.85, kBenchTolerance);
      dd.InitialCompute();
      for (const auto& batch : batches) {
        dd.ApplyUpdates(batch);
        dd_time += dd.stats().seconds;
      }
      dd_time /= static_cast<double>(batches.size());
    }
    double rp_time = 0.0;
    {
      MutableGraph graph(split.initial);
      GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance), {.use_retract_propagate = true});
      rp_time = RunStreaming(engine, batches).avg_batch_seconds;
    }
    double bolt_time = 0.0;
    {
      MutableGraph graph(split.initial);
      GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
      bolt_time = RunStreaming(engine, batches).avg_batch_seconds;
    }
    std::printf("%-8zu %14.2f %16.2f %14.2f\n", size, dd_time * 1e3, rp_time * 1e3,
                bolt_time * 1e3);
  }

  PrintHeader(
      "Figure 8b: 100 consecutive single-edge mutations — per-mutation time\n"
      "distribution (ms). DD shows high variance; GraphBolt stays steady.");

  const auto singles = MakeBatches(split, 100, {.size = 1, .add_fraction = 0.6}, 163);

  auto summarize = [](const char* name, std::vector<double> times_ms) {
    double total = 0.0;
    for (const double t : times_ms) {
      total += t;
    }
    const double mean = total / static_cast<double>(times_ms.size());
    double var = 0.0;
    for (const double t : times_ms) {
      var += (t - mean) * (t - mean);
    }
    var /= static_cast<double>(times_ms.size());
    std::sort(times_ms.begin(), times_ms.end());
    std::printf("%-14s mean=%8.3f  stddev=%8.3f  p50=%8.3f  p95=%8.3f  max=%8.3f  total=%8.1f\n",
                name, mean, std::sqrt(var), times_ms[times_ms.size() / 2],
                times_ms[times_ms.size() * 95 / 100], times_ms.back(), total);
  };

  {
    std::vector<double> times;
    DdPageRank dd(split.initial, 10, 0.85, kBenchTolerance);
    dd.InitialCompute();
    for (const auto& batch : singles) {
      dd.ApplyUpdates(batch);
      times.push_back(dd.stats().seconds * 1e3);
    }
    summarize("DiffDataflow", std::move(times));
  }
  {
    std::vector<double> times;
    MutableGraph graph(split.initial);
    GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
    engine.InitialCompute();
    for (const auto& batch : singles) {
      engine.ApplyMutations(batch);
      times.push_back(engine.stats().seconds * 1e3);
    }
    summarize("GraphBolt", std::move(times));
  }

  std::printf(
      "\nExpected shape (Figure 8): GraphBolt < GraphBolt-RP < DD at every\n"
      "batch size (graph-aware dense arrays vs generic hashed arrangements);\n"
      "DD's single-edge stddev/max far exceeds GraphBolt's.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
