// Reproduces Figure 6 (and Table 7): the ratio of edge computations
// performed by GraphBolt relative to GB-Reset, per algorithm, graph and
// batch size. This is the mechanism behind Table 5's speedups: refinement
// touches only the dependency subgraph reachable from the mutation.
//
// Paper shape: ratios well below 1 everywhere; PR/CoEM the highest
// (slow-stabilizing sums), BP/CF/LP much lower, TC lowest by orders of
// magnitude (purely local impact).
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/triangle_counting.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/reset_engine.h"

namespace graphbolt {
namespace {

constexpr size_t kBatchSizes[] = {1, 10, 100};
constexpr const char* kBatchLabels[] = {"1K*", "10K*", "100K*"};

template <typename Algo>
std::vector<double> Ratios(const StreamSplit& split, const Algo& algo,
                           const std::vector<std::vector<MutationBatch>>& batches_per_size) {
  std::vector<double> ratios;
  for (const auto& batches : batches_per_size) {
    uint64_t reset_edges = 0;
    uint64_t bolt_edges = 0;
    {
      MutableGraph graph(split.initial);
      ResetEngine<Algo> engine(&graph, algo);
      reset_edges = RunStreaming(engine, batches).avg_edges;
    }
    {
      MutableGraph graph(split.initial);
      GraphBoltEngine<Algo> engine(&graph, algo);
      bolt_edges = RunStreaming(engine, batches).avg_edges;
    }
    ratios.push_back(static_cast<double>(bolt_edges) / static_cast<double>(reset_edges));
  }
  return ratios;
}

std::vector<double> TriangleRatios(const StreamSplit& split,
                                   const std::vector<std::vector<MutationBatch>>& batches_per_size) {
  std::vector<double> ratios;
  for (const auto& batches : batches_per_size) {
    uint64_t reset_edges = 0;
    uint64_t bolt_edges = 0;
    {
      MutableGraph graph(split.initial);
      TriangleCountingResetEngine engine(&graph);
      reset_edges = RunStreaming(engine, batches).avg_edges;
    }
    {
      MutableGraph graph(split.initial);
      TriangleCountingEngine engine(&graph);
      bolt_edges = RunStreaming(engine, batches).avg_edges;
    }
    ratios.push_back(static_cast<double>(bolt_edges) / static_cast<double>(reset_edges));
  }
  return ratios;
}

void Run() {
  PrintHeader(
      "Figure 6 / Table 7: edge computations of GraphBolt as a fraction of\n"
      "GB-Reset's, per algorithm / graph / batch size (lower is better).");

  const std::vector<Surrogate> graphs{kWiki, kTwitter, kFriendster};
  std::printf("%-6s %-5s", "algo", "graph");
  for (const char* label : kBatchLabels) {
    std::printf(" %10s", label);
  }
  std::printf("\n");

  BenchJson json("figure6_edge_work");

  for (const Surrogate& surrogate : graphs) {
    StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
    std::vector<std::vector<MutationBatch>> batches;
    for (const size_t size : kBatchSizes) {
      batches.push_back(
          MakeBatches(split, 2, {.size = size, .add_fraction = 0.6}, surrogate.seed + 31));
    }

    auto print_row = [&](const char* algo, const std::vector<double>& ratios) {
      std::printf("%-6s %-5s", algo, surrogate.name);
      for (size_t s = 0; s < ratios.size(); ++s) {
        std::printf(" %10.4f", ratios[s]);
        // Edge counts are deterministic (no timing), so the ratio is an
        // exactly reproducible trajectory key; "overhead" marks it
        // lower-is-better for bench_diff.py.
        json.Row()
            .Str("algo", algo)
            .Str("graph", surrogate.name)
            .Str("batch_label", kBatchLabels[s])
            .Num("edge_work_overhead", ratios[s]);
      }
      std::printf("\n");
    };
    print_row("PR", Ratios(split, PageRank(0.85, kBenchTolerance), batches));
    print_row("BP", Ratios(split, BeliefPropagation<3>(13, kBenchTolerance), batches));
    print_row("CF", Ratios(split, CollaborativeFiltering<4>(0.05, 17, kBenchTolerance, 0.3), batches));
    print_row("CoEM", Ratios(split, CoEM(surrogate.vertices, 0.08, surrogate.seed + 33, kBenchTolerance), batches));
    print_row("LP",
              Ratios(split, LabelPropagation<2>(surrogate.vertices, 0.1, surrogate.seed + 35, kBenchTolerance),
                     batches));
    print_row("TC", TriangleRatios(split, batches));
  }

  const std::string json_path = json.DefaultPath();
  if (json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nExpected shape (Figure 6): every ratio < 1 and growing with batch\n"
      "size; PR/CoEM highest, TC smallest by orders of magnitude.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
