// Reproduces Figure 4: how vertex values change across iterations for Label
// Propagation (the observation motivating pruning). The paper's plot shows
// high change density in the first ~5 iterations that then drops sharply;
// we print the fraction of vertices whose value changed at each iteration,
// read straight from the dependency store's changed-bit vectors.
#include <cstdio>

#include "bench/harness.h"
#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"

namespace graphbolt {
namespace {

template <typename Algo>
void PrintStability(const char* label, const char* algo_key, MutableGraph* graph, Algo algo,
                    uint32_t iterations, BenchJson& json) {
  GraphBoltEngine<Algo> engine(graph, algo, {.max_iterations = iterations});
  engine.InitialCompute();
  std::printf("\n%s (fraction of vertices changing per iteration):\n", label);
  std::printf("%-5s %10s %9s  %s\n", "iter", "changed", "fraction", "bar");
  const double n = static_cast<double>(graph->num_vertices());
  double total_churn = 0.0;
  for (uint32_t level = 1; level <= engine.store().total_levels(); ++level) {
    const size_t changed = engine.store().ChangedAt(level).Count();
    const double fraction = static_cast<double>(changed) / n;
    total_churn += fraction;
    std::printf("%-5u %10zu %8.1f%%  ", level, changed, fraction * 100.0);
    const int bar = static_cast<int>(fraction * 50.0 + 0.5);
    for (int i = 0; i < bar; ++i) {
      std::printf("#");
    }
    std::printf("\n");
    json.Row()
        .Str("algo", algo_key)
        .Num("iter", static_cast<double>(level))
        .Num("changed", static_cast<double>(changed))
        .Num("changed_fraction", fraction);
  }
  // The trajectory-guarded scalar: total change mass over the window. The
  // counts are deterministic (fixed seeds, no timing), so a drift here means
  // convergence behaviour itself changed — exactly what the figure pins.
  json.Row()
      .Str("algo", algo_key)
      .Str("mode", "summary")
      .Num("total_churn_overhead", total_churn);
}

void Run() {
  PrintHeader(
      "Figure 4: change in vertex values across iterations (Label\n"
      "Propagation over the Wiki surrogate). Motivates horizontal/vertical\n"
      "pruning: density is high early and collapses as values stabilize.");

  const Surrogate surrogate{"WK*", 40000, 500000, 121};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);

  BenchJson json("figure4_stability");

  // The deployment knob is the change tolerance (§4.2 selective
  // scheduling): the looser it is, the earlier values count as stable and
  // the earlier the horizontal red-line cutoff of Figure 4 becomes safe.
  MutableGraph g_lp(split.initial);
  PrintStability("Label Propagation, tolerance 1e-3, 20-iteration window", "LP", &g_lp,
                 LabelPropagation<2>(surrogate.vertices, 0.1, 122, /*tolerance=*/1e-3), 20, json);

  MutableGraph g_bp(split.initial);
  PrintStability("Belief Propagation, tolerance 1e-4 (fast collapse)", "BP", &g_bp,
                 BeliefPropagation<3>(13, 1e-4), 10, json);

  MutableGraph g_pr(split.initial);
  PrintStability("PageRank, tolerance 1e-4 (slower to stabilize)", "PR", &g_pr,
                 PageRank(0.85, 1e-4), 15, json);

  const std::string json_path = json.DefaultPath();
  if (json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nExpected shape (Figure 4): change density is high in the early\n"
      "iterations and collapses as values stabilize; MLDM aggregations (BP)\n"
      "collapse fastest, sum-style ones (PR) slowest.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
