// Reproduces Table 8: GraphBolt execution times under the Hi workload
// (mutations anchored at high out-degree vertices, maximizing the impacted
// dependency subgraph) versus the Lo workload (low out-degree anchors).
//
// Paper shape: Hi strictly slower than Lo for every algorithm, yet
// GraphBolt still beats GB-Reset in both.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/triangle_counting.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/reset_engine.h"

namespace graphbolt {
namespace {

struct WorkloadTimes {
  double lo_bolt = 0.0;
  double hi_bolt = 0.0;
  double lo_reset = 0.0;
  double hi_reset = 0.0;
};

template <typename Algo>
WorkloadTimes RunWorkloads(const StreamSplit& split, const Algo& algo,
                           const std::vector<MutationBatch>& lo,
                           const std::vector<MutationBatch>& hi) {
  WorkloadTimes times;
  {
    MutableGraph graph(split.initial);
    GraphBoltEngine<Algo> engine(&graph, algo);
    times.lo_bolt = RunStreaming(engine, lo).avg_batch_seconds;
  }
  {
    MutableGraph graph(split.initial);
    GraphBoltEngine<Algo> engine(&graph, algo);
    times.hi_bolt = RunStreaming(engine, hi).avg_batch_seconds;
  }
  {
    MutableGraph graph(split.initial);
    ResetEngine<Algo> engine(&graph, algo);
    times.lo_reset = RunStreaming(engine, lo).avg_batch_seconds;
  }
  {
    MutableGraph graph(split.initial);
    ResetEngine<Algo> engine(&graph, algo);
    times.hi_reset = RunStreaming(engine, hi).avg_batch_seconds;
  }
  return times;
}

void PrintRow(const char* algo, const char* graph, const WorkloadTimes& t, BenchJson& json) {
  std::printf("%-6s %-5s %10.2f %10.2f %7.2fx %12.2f %12.2f\n", algo, graph, t.lo_bolt * 1e3,
              t.hi_bolt * 1e3, t.hi_bolt / t.lo_bolt, t.lo_reset * 1e3, t.hi_reset * 1e3);
  json.Row()
      .Str("algo", algo)
      .Str("graph", graph)
      .Num("bolt_lo_ms", t.lo_bolt * 1e3)
      .Num("bolt_hi_ms", t.hi_bolt * 1e3)
      .Num("hi_over_lo", t.hi_bolt / t.lo_bolt)
      .Num("reset_lo_ms", t.lo_reset * 1e3)
      .Num("reset_hi_ms", t.hi_reset * 1e3);
}

void Run() {
  PrintHeader(
      "Table 8: GraphBolt under Lo (low out-degree anchors) vs Hi (high\n"
      "out-degree anchors) mutation workloads; GB-Reset shown for context.");

  std::printf("%-6s %-5s %10s %10s %8s %12s %12s\n", "algo", "graph", "GB Lo(ms)", "GB Hi(ms)",
              "Hi/Lo", "Reset Lo(ms)", "Reset Hi(ms)");
  BenchJson json("table8_workloads");

  for (const Surrogate& surrogate : {kTwitterMpi, kFriendster}) {
    StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
    const auto lo = MakeBatches(
        split, 2, {.size = 100, .add_fraction = 0.5, .targeting = MutationTargeting::kLowDegree},
        surrogate.seed + 61);
    const auto hi = MakeBatches(
        split, 2, {.size = 100, .add_fraction = 0.5, .targeting = MutationTargeting::kHighDegree},
        surrogate.seed + 62);

    PrintRow("BP", surrogate.name, RunWorkloads(split, BeliefPropagation<3>(13, kBenchTolerance), lo, hi), json);
    PrintRow("CoEM", surrogate.name,
             RunWorkloads(split, CoEM(surrogate.vertices, 0.08, surrogate.seed + 63, kBenchTolerance), lo, hi),
             json);
    PrintRow("LP", surrogate.name,
             RunWorkloads(split, LabelPropagation<2>(surrogate.vertices, 0.1, surrogate.seed + 64, kBenchTolerance),
                          lo, hi),
             json);
    PrintRow("CF", surrogate.name, RunWorkloads(split, CollaborativeFiltering<4>(0.05, 17, kBenchTolerance, 0.3), lo, hi), json);

    // Triangle counting.
    WorkloadTimes tc;
    {
      MutableGraph graph(split.initial);
      TriangleCountingEngine engine(&graph);
      tc.lo_bolt = RunStreaming(engine, lo).avg_batch_seconds;
    }
    {
      MutableGraph graph(split.initial);
      TriangleCountingEngine engine(&graph);
      tc.hi_bolt = RunStreaming(engine, hi).avg_batch_seconds;
    }
    {
      MutableGraph graph(split.initial);
      TriangleCountingResetEngine engine(&graph);
      tc.lo_reset = RunStreaming(engine, lo).avg_batch_seconds;
      tc.hi_reset = tc.lo_reset;
    }
    PrintRow("TC", surrogate.name, tc, json);
  }

  if (json.WriteFile(json.DefaultPath())) {
    std::printf("\nwrote %s\n", json.DefaultPath().c_str());
  }

  std::printf(
      "\nExpected shape (Table 8): Hi > Lo for every algorithm (hub-anchored\n"
      "mutations spread further); GraphBolt remains below GB-Reset in both\n"
      "workloads.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
