// Reproduces Table 1 (and the Figure 2 motivation): the number of vertices
// with incorrect results when intermediate values are reused naively —
// S*(GT, R_G) instead of S*(GT, I) — for Label Propagation over 10 batches
// of 100 edge mutations.
//
// Paper shape: errors are large from the first batch (1.6M vertices >= 1%
// on Wiki) and accumulate monotonically across batches; GraphBolt's refined
// results show zero erroneous vertices.
#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/label_propagation.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"

namespace graphbolt {
namespace {

using Lp = LabelPropagation<6>;
using Value = Lp::Value;

// Relative error between two label distributions (max over labels).
double RelativeError(const Value& approx, const Value& exact) {
  double worst = 0.0;
  for (size_t f = 0; f < approx.size(); ++f) {
    const double denom = std::fabs(exact[f]) > 1e-12 ? std::fabs(exact[f]) : 1e-12;
    worst = std::max(worst, std::fabs(approx[f] - exact[f]) / denom);
  }
  return worst;
}

// Runs 10 synchronous iterations on `graph` starting from `values`.
std::vector<Value> IterateFrom(const MutableGraph& graph, const Lp& algo,
                               std::vector<Value> values) {
  const auto contexts = ComputeVertexContexts(graph);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Value> next(graph.num_vertices());
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      auto agg = algo.IdentityAggregate();
      const auto in_nbrs = graph.InNeighbors(v);
      const auto in_wts = graph.InWeights(v);
      for (size_t i = 0; i < in_nbrs.size(); ++i) {
        algo.AggregateAtomic(
            &agg, algo.ContributionOf(in_nbrs[i], values[in_nbrs[i]], in_wts[i],
                                      contexts[in_nbrs[i]]));
      }
      next[v] = algo.VertexCompute(v, agg, contexts[v]);
    }
    values.swap(next);
  }
  return values;
}

void Run() {
  PrintHeader(
      "Table 1: vertices with incorrect Label Propagation results when\n"
      "reusing stale values (naive incremental), Wiki surrogate,\n"
      "10 batches x 100 edge mutations. GraphBolt column must be zero.");

  const Surrogate surrogate{"WK*", 20000, 250000, 111};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
  const auto batches = MakeBatches(split, 10, {.size = 100, .add_fraction = 0.6}, 112);

  Lp algo(surrogate.vertices, 0.1, 113);

  // Exact: restart per snapshot. Naive: keep iterating from stale values.
  // GraphBolt: dependency-driven refinement.
  MutableGraph g_exact(split.initial);
  LigraEngine<Lp> exact(&g_exact, algo);
  exact.InitialCompute();

  MutableGraph g_naive(split.initial);
  LigraEngine<Lp> naive_seed(&g_naive, algo);
  naive_seed.InitialCompute();
  std::vector<Value> naive = naive_seed.values();

  MutableGraph g_bolt(split.initial);
  GraphBoltEngine<Lp> bolt(&g_bolt, algo);
  bolt.InitialCompute();

  std::printf("%-6s %12s %12s %14s %14s\n", "batch", "naive>10%", "naive>1%", "graphbolt>10%",
              "graphbolt>1%");
  for (size_t b = 0; b < batches.size(); ++b) {
    exact.ApplyMutations(batches[b]);
    bolt.ApplyMutations(batches[b]);
    g_naive.ApplyBatch(batches[b]);
    naive = IterateFrom(g_naive, algo, std::move(naive));

    size_t naive_10 = 0;
    size_t naive_1 = 0;
    size_t bolt_10 = 0;
    size_t bolt_1 = 0;
    for (VertexId v = 0; v < g_exact.num_vertices(); ++v) {
      const double naive_err = RelativeError(naive[v], exact.values()[v]);
      const double bolt_err = RelativeError(bolt.values()[v], exact.values()[v]);
      naive_10 += naive_err >= 0.10;
      naive_1 += naive_err >= 0.01;
      bolt_10 += bolt_err >= 0.10;
      bolt_1 += bolt_err >= 0.01;
    }
    std::printf("B%-5zu %12zu %12zu %14zu %14zu\n", b + 1, naive_10, naive_1, bolt_10, bolt_1);
  }
  std::printf(
      "\nExpected shape: naive error populations are nonzero from B1 and\n"
      "grow across batches; GraphBolt columns stay at 0 (BSP-exact).\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
