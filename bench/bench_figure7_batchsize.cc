// Reproduces Figure 7: execution time as the mutation batch size sweeps
// from a single edge up to 1M edges per batch, GB-Reset vs GraphBolt, for
// every algorithm. (The sweep's top end is scaled with the graphs: 100K on
// a 600K-edge surrogate corresponds to the paper's 1M on billion-edge
// graphs; both are a comparable fraction of the graph.)
//
// Paper shape: GraphBolt's time grows with batch size but stays below
// GB-Reset even at the largest batches; TC grows the least (local impact).
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/triangle_counting.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/reset_engine.h"

namespace graphbolt {
namespace {

constexpr size_t kSweep[] = {1, 10, 100, 1000, 10000, 100000};
constexpr const char* kSweepLabels[] = {"1", "10", "100", "1K", "10K", "100K(~1M)"};

template <typename Algo>
void Sweep(const char* name, const StreamSplit& split, const Algo& algo,
           const std::vector<std::vector<MutationBatch>>& batches_per_size,
           BenchJson& json) {
  std::printf("\n%s on %s:\n%-12s %12s %12s %12s %9s\n", name, "TT*", "batch", "GB-Reset(ms)",
              "GraphBolt(ms)", "GB+fb(ms)", "speedup");
  for (size_t s = 0; s < batches_per_size.size(); ++s) {
    double reset_time = 0.0;
    double bolt_time = 0.0;
    double fallback_time = 0.0;
    {
      MutableGraph graph(split.initial);
      ResetEngine<Algo> engine(&graph, algo);
      reset_time = RunStreaming(engine, batches_per_size[s]).avg_batch_seconds;
    }
    {
      MutableGraph graph(split.initial);
      GraphBoltEngine<Algo> engine(&graph, algo);
      bolt_time = RunStreaming(engine, batches_per_size[s]).avg_batch_seconds;
    }
    {
      // Computation-aware fallback (extension): batches mutating > 1% of
      // edges are recomputed with tracking instead of refined.
      MutableGraph graph(split.initial);
      GraphBoltEngine<Algo> engine(&graph, algo, {.reset_fallback_fraction = 0.01});
      fallback_time = RunStreaming(engine, batches_per_size[s]).avg_batch_seconds;
    }
    std::printf("%-12s %12.2f %12.2f %12.2f %8.2fx\n", kSweepLabels[s], reset_time * 1e3,
                bolt_time * 1e3, fallback_time * 1e3, reset_time / bolt_time);
    json.Row()
        .Str("algo", name)
        .Str("batch_label", kSweepLabels[s])
        .Num("reset_ms", reset_time * 1e3)
        .Num("bolt_ms", bolt_time * 1e3)
        .Num("fallback_ms", fallback_time * 1e3)
        .Num("speedup_vs_reset", reset_time / bolt_time);
  }
}

void TriangleSweep(const StreamSplit& split,
                   const std::vector<std::vector<MutationBatch>>& batches_per_size,
                   BenchJson& json) {
  std::printf("\nTC on TT*:\n%-12s %12s %12s %9s\n", "batch", "GB-Reset(ms)", "GraphBolt(ms)",
              "speedup");
  for (size_t s = 0; s < batches_per_size.size(); ++s) {
    double reset_time = 0.0;
    double bolt_time = 0.0;
    {
      MutableGraph graph(split.initial);
      TriangleCountingResetEngine engine(&graph);
      reset_time = RunStreaming(engine, batches_per_size[s]).avg_batch_seconds;
    }
    {
      MutableGraph graph(split.initial);
      TriangleCountingEngine engine(&graph);
      bolt_time = RunStreaming(engine, batches_per_size[s]).avg_batch_seconds;
    }
    std::printf("%-12s %12.2f %12.2f %8.2fx\n", kSweepLabels[s], reset_time * 1e3, bolt_time * 1e3,
                reset_time / bolt_time);
    json.Row()
        .Str("algo", "TC")
        .Str("batch_label", kSweepLabels[s])
        .Num("reset_ms", reset_time * 1e3)
        .Num("bolt_ms", bolt_time * 1e3)
        .Num("speedup_vs_reset", reset_time / bolt_time);
  }
}

void Run() {
  PrintHeader(
      "Figure 7: per-batch time vs mutation batch size (1 edge .. ~1M\n"
      "scaled), GB-Reset vs GraphBolt, TwitterMPI surrogate.");

  const Surrogate surrogate{"TT*", 40000, 600000, 151};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
  std::vector<std::vector<MutationBatch>> batches;
  for (const size_t size : kSweep) {
    batches.push_back(MakeBatches(split, 1, {.size = size, .add_fraction = 0.6}, 152));
  }

  BenchJson json("figure7_batchsize");
  Sweep("PR", split, PageRank(0.85, kBenchTolerance), batches, json);
  Sweep("BP", split, BeliefPropagation<3>(13, kBenchTolerance), batches, json);
  Sweep("CoEM", split, CoEM(surrogate.vertices, 0.08, 153, kBenchTolerance), batches, json);
  Sweep("CF", split, CollaborativeFiltering<4>(0.05, 17, kBenchTolerance, 0.3), batches, json);
  Sweep("LP", split, LabelPropagation<2>(surrogate.vertices, 0.1, 154, kBenchTolerance), batches,
        json);
  TriangleSweep(split, batches, json);

  const std::string json_path = json.DefaultPath();
  if (json.WriteFile(json_path)) {
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  std::printf(
      "\nExpected shape (Figure 7): GraphBolt time rises with batch size and\n"
      "stays below GB-Reset through the paper's density regime (up to a few\n"
      "hundred mutations here; our surrogates are ~1000x smaller than the\n"
      "paper's graphs, so its largest 1M batch corresponds to ~100-1K).\n"
      "Beyond that density — which the paper never measures — refinement\n"
      "exceeds restart cost; the GB+fb column shows the computation-aware\n"
      "fallback (an extension) capping the loss near GB-Reset's cost.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
