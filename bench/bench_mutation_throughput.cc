// ApplyBatch latency: rebuild-on-apply Csr (the pre-slack path) vs the
// in-place SlackCsr splice, swept over batch sizes 1e2..1e6 on two inputs —
// an R-MAT surrogate (skewed degrees, like the paper's graphs) and either a
// real edge list (GRAPHBOLT_REAL_GRAPH=<path>, text format) or an
// Erdős–Rényi surrogate (uniform degrees) when none is given. Results land
// in BENCH_mutation_throughput.json (see BenchJson in bench/harness.h) so
// successive runs form a perf trajectory.
//
// Expected shape: the old path pays O(V+E) per batch regardless of batch
// size, so small batches show the largest gap (>=10x for batches <= 1e3 on
// a 1e6-edge graph); at 1e6-edge batches the two converge since the splice
// rewrites most of the arena anyway.
//
// --smoke: tiny inputs, no timing table, no JSON. Asserts the O(batch)
// property on deterministic ApplyStats counters (spliced work must scale
// sublinearly in |E| and touched vertices must be bounded by the batch),
// plus a delete-heavy sweep asserting that background compaction keeps
// every ApplyBatch free of synchronous compaction (counters, then a p99
// apply-latency comparison against the sync baseline). Exits nonzero on
// violation. Wired as the `perf`-labeled ctest.
//
// GRAPHBOLT_BG_COMPACTION=1 switches the full (timed) sweep to background
// compaction too — maintenance runs untimed between batches, mirroring the
// StreamDriver quiescent-window placement — and the JSON rows record which
// mode produced them in `compaction_mode`.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/graph/csr.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/graph/mutable_graph.h"
#include "src/stream/update_stream.h"
#include "src/util/timer.h"

namespace graphbolt {
namespace {

// The old MutableGraph::ApplyBatch body, verbatim in shape: full-V
// per-vertex edit arrays (the scratch cost the slack path eliminated) and a
// dual O(V+E) rebuild. Both timed regions are end-to-end ApplyBatch
// equivalents: batch normalization is inside each (it was the first step of
// the old ApplyBatch and still is of the new one).
class RebuildGraph {
 public:
  explicit RebuildGraph(const EdgeList& edges)
      : out_(Csr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/false)),
        in_(Csr::FromEdges(edges.num_vertices(), edges.edges(), /*reverse=*/true)) {}

  void Apply(const AppliedMutations& result) {
    const VertexId n = out_.num_vertices();
    std::vector<std::vector<VertexId>> out_deletes(n);
    std::vector<std::vector<std::pair<VertexId, Weight>>> out_adds(n);
    std::vector<std::vector<VertexId>> in_deletes(n);
    std::vector<std::vector<std::pair<VertexId, Weight>>> in_adds(n);
    for (const Edge& e : result.added) {
      out_adds[e.src].push_back({e.dst, e.weight});
      in_adds[e.dst].push_back({e.src, e.weight});
    }
    for (const Edge& e : result.deleted) {
      out_deletes[e.src].push_back(e.dst);
      in_deletes[e.dst].push_back(e.src);
    }
    for (auto& v : in_deletes) {
      std::sort(v.begin(), v.end());
    }
    for (auto& v : in_adds) {
      std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) { return a.first < b.first; });
    }
    out_.ApplyEdits(out_deletes, out_adds);
    in_.ApplyEdits(in_deletes, in_adds);
  }

  EdgeIndex num_edges() const { return out_.num_edges(); }

 private:
  Csr out_;
  Csr in_;
};

struct SweepPoint {
  size_t batch_size;
  size_t batches;  // scaled down as batches grow so the sweep stays minutes
};

constexpr SweepPoint kSweep[] = {
    {100, 8}, {1000, 8}, {10000, 5}, {100000, 3}, {1000000, 1},
};

bool BackgroundCompactionRequested() {
  const char* value = std::getenv("GRAPHBOLT_BG_COMPACTION");
  return value != nullptr && std::strcmp(value, "1") == 0;
}

// One (input graph, batch size) cell: streams `point.batches` identical
// mutation batches through both representations and reports mean latency.
void SweepInput(const char* label, const EdgeList& full, BenchJson& json) {
  const bool background = BackgroundCompactionRequested();
  StreamSplit split = SplitForStreaming(full, 0.5, /*seed=*/77);
  std::printf("\n%s: |V|=%u initial |E|=%zu\n", label, split.initial.num_vertices(),
              static_cast<size_t>(split.initial.num_edges()));
  std::printf("%-10s %14s %14s %9s\n", "batch", "rebuild(ms)", "slack(ms)", "speedup");
  for (const SweepPoint& point : kSweep) {
    MutableGraph graph(split.initial);
    if (background) {
      graph.SetCompactionMode(SlackCsr::CompactionMode::kBackground);
    }
    RebuildGraph rebuild(split.initial);
    UpdateStream stream(split.held_back, /*seed=*/91);
    const BatchOptions options{.size = point.batch_size, .add_fraction = 0.5};
    double old_seconds = 0.0;
    double new_seconds = 0.0;
    for (size_t b = 0; b < point.batches; ++b) {
      const MutationBatch batch = stream.NextBatch(graph, options);
      Timer timer;
      const AppliedMutations applied = graph.NormalizeBatch(batch);
      rebuild.Apply(applied);
      old_seconds += timer.Seconds();
      timer.Reset();
      graph.ApplyBatch(batch);
      new_seconds += timer.Seconds();
      if (background) {
        // Untimed, like the StreamDriver quiescent window the maintenance
        // steps normally run in: reclamation cost stays off the apply path.
        while (graph.MaintenanceStep(1 << 15)) {
        }
      }
    }
    const double old_ms = old_seconds * 1e3 / static_cast<double>(point.batches);
    const double new_ms = new_seconds * 1e3 / static_cast<double>(point.batches);
    std::printf("%-10zu %14.3f %14.3f %8.1fx\n", point.batch_size, old_ms, new_ms,
                old_ms / new_ms);
    json.Row()
        .Str("graph", label)
        .Str("compaction_mode", background ? "background" : "sync")
        .Num("initial_edges", static_cast<double>(split.initial.num_edges()))
        .Num("batch_size", static_cast<double>(point.batch_size))
        .Num("batches", static_cast<double>(point.batches))
        .Num("rebuild_ms", old_ms)
        .Num("slack_ms", new_ms)
        .Num("speedup", old_ms / new_ms);
  }
}

// --smoke: deterministic counter assertions, robust to machine load. The
// sublinearity proof: the same mutation stream applied to a 4x-larger graph
// must splice < 4x the edges (the rebuild path would do exactly 4x).
int Smoke() {
  int failures = 0;
  auto expect = [&failures](bool ok, const char* what) {
    if (!ok) {
      std::printf("SMOKE FAIL: %s\n", what);
      ++failures;
    }
  };
  auto run = [](EdgeIndex edges) {
    EdgeList full = GenerateRmat(2000, edges, {.seed = 9, .assign_random_weights = true});
    StreamSplit split = SplitForStreaming(full, 0.5, 10);
    MutableGraph graph(split.initial);
    UpdateStream stream(split.held_back, 11);
    uint64_t spliced = 0;
    uint64_t touched = 0;
    for (int b = 0; b < 6; ++b) {
      graph.ApplyBatch(stream.NextBatch(graph, {.size = 64, .add_fraction = 0.5}));
      spliced += graph.out().last_apply_stats().edges_spliced +
                 graph.in().last_apply_stats().edges_spliced;
      touched += graph.out().last_apply_stats().touched_vertices;
    }
    struct {
      uint64_t spliced, touched;
      EdgeIndex graph_edges;
    } r{spliced, touched, graph.num_edges()};
    return r;
  };
  // Delete-heavy compaction sweep: pure-delete batches shed edges fast
  // enough that the sync policy must compact inside ApplyBatch several
  // times. Under kBackground the same stream must never compact inside an
  // apply — slack is reclaimed by untimed MaintenanceStep calls between
  // batches — so the apply-latency tail loses the compaction spikes.
  // Deletes only, deliberately: adds relocate overflowing segments, and a
  // relocation strands the segment's old capacity as slack in one step —
  // a single hub add can jump slack by whole percentage points, which is
  // exactly the case the kForcedSyncSlack backstop exists for. A delete
  // can strand at most its own entry, so with maintenance keeping pace
  // the backstop is unreachable and the no-sync property is exact.
  struct ModeResult {
    double p99_ms = 0.0;
    uint64_t apply_compactions = 0;  // ApplyStats.compactions summed over batches
    SlackCsr::CompactionStats stats;
  };
  // 12k vertices on purpose: a sync compaction rewrites every vertex
  // segment, so its cost scales with V while a batch splice scales with
  // the batch — at this size the compaction spike is several times a
  // plain splice and the p99 comparison below measures structure, not
  // scheduler noise.
  auto run_mode = [](SlackCsr::CompactionMode mode) {
    EdgeList full = GenerateRmat(12000, 90000, {.seed = 21, .assign_random_weights = true});
    StreamSplit split = SplitForStreaming(full, 0.5, 22);
    MutableGraph graph(split.initial);
    graph.SetCompactionMode(mode);
    UpdateStream stream(split.held_back, 23);
    std::vector<double> batch_ms;
    ModeResult result;
    for (int b = 0; b < 25; ++b) {
      const MutationBatch batch = stream.NextBatch(graph, {.size = 1024, .add_fraction = 0.0});
      Timer timer;
      graph.ApplyBatch(batch);
      batch_ms.push_back(timer.Seconds() * 1e3);
      result.apply_compactions += graph.out().last_apply_stats().compactions +
                                  graph.in().last_apply_stats().compactions;
      if (mode == SlackCsr::CompactionMode::kBackground) {
        while (graph.MaintenanceStep(1 << 14)) {
        }
      }
    }
    std::sort(batch_ms.begin(), batch_ms.end());
    result.p99_ms = batch_ms[batch_ms.size() * 99 / 100];
    result.stats = graph.compaction_stats();
    return result;
  };
  // Three interleaved repetitions per mode, keeping the best p99 of each:
  // the counters are deterministic across reps, but on a loaded machine a
  // single rep's wall-clock tail can be inflated several-fold by whatever
  // else holds the core. Interleaving spreads that contention across both
  // modes and min() picks each mode's cleanest rep.
  ModeResult sync_mode;
  ModeResult bg_mode;
  for (int rep = 0; rep < 5; ++rep) {
    const ModeResult s = run_mode(SlackCsr::CompactionMode::kSync);
    const ModeResult b = run_mode(SlackCsr::CompactionMode::kBackground);
    if (rep == 0) {
      sync_mode = s;
      bg_mode = b;
    }
    sync_mode.p99_ms = std::min(sync_mode.p99_ms, s.p99_ms);
    bg_mode.p99_ms = std::min(bg_mode.p99_ms, b.p99_ms);
  }
  expect(sync_mode.apply_compactions >= 2,
         "sync baseline compacts inside ApplyBatch on the delete-heavy stream");
  expect(bg_mode.apply_compactions == 0,
         "background mode: no ApplyBatch performed synchronous compaction");
  expect(bg_mode.stats.forced_sync_compactions == 0,
         "background mode: forced-sync backstop never fired");
  expect(bg_mode.stats.background_compactions >= 1,
         "background mode: maintenance completed at least one shadow rewrite");
  // The latency criterion rides on the counters above: sync p99 indexes a
  // compaction spike (>= 2 spikes in 25 batches), background p99 a plain
  // splice, so this holds by construction rather than machine speed — on a
  // quiet box the gap is ~30%. But background mode needs a second core for
  // its compaction thread, so external load inflates its tail *more* than
  // sync's; the 25% band plus min-of-5 keeps this a gross-inversion guard
  // (the deterministic counters above are the real regression tripwire)
  // without flapping on a busy machine.
  expect(bg_mode.p99_ms <= sync_mode.p99_ms * 1.25,
         "background mode: p99 apply latency no worse than sync baseline");
  std::printf(
      "smoke: delete-heavy sync{p99=%.3fms apply_compactions=%zu} "
      "background{p99=%.3fms bg_compactions=%zu steps=%zu edges=%zu forced=%zu}\n",
      sync_mode.p99_ms, static_cast<size_t>(sync_mode.apply_compactions), bg_mode.p99_ms,
      static_cast<size_t>(bg_mode.stats.background_compactions),
      static_cast<size_t>(bg_mode.stats.maintenance_steps),
      static_cast<size_t>(bg_mode.stats.background_edges_copied),
      static_cast<size_t>(bg_mode.stats.forced_sync_compactions));

  const auto small = run(30000);
  const auto large = run(120000);
  expect(small.touched <= 6 * 2 * 64, "touched vertices bounded by batch entries");
  // The rebuild path rewrites both views' full arenas every batch: 6
  // batches x 2 views x |E| edges. The splice totals must come in at less
  // than half of that even on this tiny graph (hub-heavy R-MAT sampling
  // makes this the worst case for the splice).
  expect(2 * small.spliced < 6 * 2 * small.graph_edges, "splice work below rebuild work");
  expect(2 * large.spliced < 6 * 2 * large.graph_edges, "splice work below rebuild work (large)");
  expect(large.spliced < 4 * small.spliced, "splice work sublinear in |E|");
  std::printf("smoke: small{spliced=%zu touched=%zu |E|=%zu} large{spliced=%zu |E|=%zu} -> %s\n",
              static_cast<size_t>(small.spliced), static_cast<size_t>(small.touched),
              static_cast<size_t>(small.graph_edges), static_cast<size_t>(large.spliced),
              static_cast<size_t>(large.graph_edges), failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      return Smoke();
    }
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }

  PrintHeader("Mutation throughput: rebuild-CSR vs SlackCsr ApplyBatch");
  BenchJson json("mutation_throughput");

  // Skewed input: R-MAT at 2.4M edges so the initial snapshot holds ~1.2M.
  SweepInput("RMAT*", GenerateRmat(200000, 2400000, {.seed = 42, .assign_random_weights = true}),
             json);

  // "Real graph" slot: a user-supplied edge list, else a uniform-degree
  // surrogate so the sweep always covers a second degree profile.
  if (const char* path = std::getenv("GRAPHBOLT_REAL_GRAPH")) {
    bool ok = false;
    EdgeList real = LoadEdgeListText(path, &ok);
    if (ok) {
      SweepInput(path, real, json);
    } else {
      std::printf("\ncould not load GRAPHBOLT_REAL_GRAPH=%s; skipping\n", path);
    }
  } else {
    SweepInput("ER*", GenerateErdosRenyi(200000, 2400000, 43, /*assign_random_weights=*/true),
               json);
  }

  const std::string path = out_path.empty() ? json.DefaultPath() : out_path;
  if (json.WriteFile(path)) {
    std::printf("\nwrote %s\n", path.c_str());
  } else {
    std::printf("\nfailed to write %s\n", path.c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace graphbolt

int main(int argc, char** argv) { return graphbolt::Main(argc, argv); }
