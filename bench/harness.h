// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// The paper evaluates on six real graphs (Wiki ... Yahoo, 0.4–6.6 B edges)
// on 32/96-core servers. Those datasets are not available offline and this
// environment is a single-core container, so each bench runs on R-MAT
// surrogates that preserve the degree skew, scaled so the whole suite
// finishes in minutes. Mutation batch sizes are scaled correspondingly; a
// trailing '*' in a label marks a scaled surrogate of the paper's setting.
// The quantities that are compared across systems (speedup factors, edge-
// computation ratios, orderings) are scale-free.
#ifndef BENCH_HARNESS_H_
#define BENCH_HARNESS_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/streaming_engine.h"
#include "src/engine/stats.h"
#include "src/graph/generators.h"
#include "src/graph/mutable_graph.h"
#include "src/stream/update_stream.h"
#include "src/util/logging.h"

namespace graphbolt {

// Change tolerance for selective scheduling in the timed benchmarks. The
// paper's engines compare value changes against a user tolerance (§4.2
// "Selective Scheduling"); 1e-4 on unit-scale values matches the regime its
// PR/LP numbers were collected in. Correctness tests elsewhere use 1e-9
// (propagate-everything) to verify exactness.
inline constexpr double kBenchTolerance = 1e-4;

struct Surrogate {
  const char* name;    // paper graph this stands in for
  VertexId vertices;
  EdgeIndex edges;
  uint64_t seed;
};

// Scaled stand-ins for Table 2's graphs (relative sizes preserved).
inline constexpr Surrogate kWiki{"WK*", 10000, 120000, 101};
inline constexpr Surrogate kUkDomain{"UK*", 16000, 200000, 102};
inline constexpr Surrogate kTwitter{"TW*", 20000, 260000, 103};
inline constexpr Surrogate kTwitterMpi{"TT*", 25000, 320000, 104};
inline constexpr Surrogate kFriendster{"FT*", 30000, 400000, 105};
inline constexpr Surrogate kYahoo{"YH*", 60000, 800000, 106};

// Builds the initial snapshot (50% of edges loaded, §5.1) plus the held-back
// addition stream.
inline StreamSplit MakeStream(const Surrogate& surrogate, bool weighted = false) {
  EdgeList full = GenerateRmat(surrogate.vertices, surrogate.edges,
                               {.seed = surrogate.seed, .assign_random_weights = weighted});
  return SplitForStreaming(full, 0.5, surrogate.seed + 1);
}

// Pre-generates `count` mutation batches against an evolving copy of the
// graph so that every engine sees the identical update stream (§5.1: same
// pending mutations for each version).
inline std::vector<MutationBatch> MakeBatches(const StreamSplit& split, size_t count,
                                              const BatchOptions& options, uint64_t seed) {
  MutableGraph shadow(split.initial);
  UpdateStream stream(split.held_back, seed);
  std::vector<MutationBatch> batches;
  batches.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    MutationBatch batch = stream.NextBatch(shadow, options);
    shadow.ApplyBatch(batch);
    batches.push_back(std::move(batch));
  }
  return batches;
}

// Average per-batch result of a streaming run.
struct StreamingResult {
  double initial_seconds = 0.0;
  double avg_batch_seconds = 0.0;
  double avg_mutation_seconds = 0.0;
  uint64_t avg_edges = 0;
};

// Runs `engine` over the batches. Constrained on the BatchEngine concept
// (src/core/streaming_engine.h) rather than duck typing, so every engine —
// including the Ligra/Reset baselines via their canonical InitialCompute
// and the scalar-result triangle-counting engines — goes through this one
// helper. The engine's own graph must already hold the initial snapshot.
template <BatchEngine Engine>
StreamingResult RunStreaming(Engine& engine, const std::vector<MutationBatch>& batches) {
  StreamingResult result;
  engine.InitialCompute();
  result.initial_seconds = engine.stats().seconds;
  double total_seconds = 0.0;
  double total_mutation = 0.0;
  uint64_t total_edges = 0;
  for (const MutationBatch& batch : batches) {
    engine.ApplyMutations(batch);
    total_seconds += engine.stats().seconds;
    total_mutation += engine.stats().mutation_seconds;
    total_edges += engine.stats().edges_processed;
  }
  const double n = static_cast<double>(batches.size());
  result.avg_batch_seconds = total_seconds / n;
  result.avg_mutation_seconds = total_mutation / n;
  result.avg_edges = static_cast<uint64_t>(static_cast<double>(total_edges) / n);
  return result;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

// ----- Perf-trajectory JSON --------------------------------------------------
// Minimal row-oriented JSON emitter: a bench accumulates flat rows of
// string/number fields and writes BENCH_<name>.json
// ({"bench": ..., "rows": [{...}, ...]}) so successive CI runs can be
// diffed or plotted without scraping stdout tables. Keys and string values
// are emitted verbatim — callers use plain identifiers, no escaping.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  // Starts a new row; chain Str()/Num() to fill it.
  BenchJson& Row() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& Str(const std::string& key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + value + "\"");
    return *this;
  }
  BenchJson& Num(const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    rows_.back().emplace_back(key, buf);
    return *this;
  }

  std::string DefaultPath() const { return "BENCH_" + name_ + ".json"; }

  bool WriteFile(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"rows\": [\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
      out << "    {";
      for (size_t f = 0; f < rows_[r].size(); ++f) {
        out << (f ? ", " : "") << "\"" << rows_[r][f].first << "\": " << rows_[r][f].second;
      }
      out << (r + 1 < rows_.size() ? "}," : "}") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace graphbolt

#endif  // BENCH_HARNESS_H_
