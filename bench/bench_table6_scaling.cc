// Reproduces Table 6: execution times on the largest graph (Yahoo
// surrogate) across core counts. The paper compares 32 vs 96 cores on
// r5.24xlarge; this container exposes a single core, so the sweep varies
// the thread-pool width {1, 2, 4} over the same harness — demonstrating the
// paper's observation that GB-Reset gains more from added parallelism than
// GraphBolt (which has little work left to parallelize).
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/triangle_counting.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"
#include "src/parallel/thread_pool.h"

namespace graphbolt {
namespace {

struct Row {
  double ligra = 0.0;
  double reset = 0.0;
  double bolt = 0.0;
};

template <typename Algo>
Row RunRow(const StreamSplit& split, const Algo& algo, const std::vector<MutationBatch>& batches) {
  Row row;
  {
    MutableGraph graph(split.initial);
    LigraEngine<Algo> engine(&graph, algo);
    row.ligra = RunStreaming(engine, batches).avg_batch_seconds;
  }
  {
    MutableGraph graph(split.initial);
    ResetEngine<Algo> engine(&graph, algo);
    row.reset = RunStreaming(engine, batches).avg_batch_seconds;
  }
  {
    MutableGraph graph(split.initial);
    GraphBoltEngine<Algo> engine(&graph, algo);
    row.bolt = RunStreaming(engine, batches).avg_batch_seconds;
  }
  return row;
}

void Run() {
  PrintHeader(
      "Table 6: per-batch times (ms) on the Yahoo surrogate across thread\n"
      "counts (paper: 32 vs 96 cores; here: pool width 1/2/4 on one core).");

  StreamSplit split = MakeStream(kYahoo, /*weighted=*/true);
  const auto batches = MakeBatches(split, 2, {.size = 100, .add_fraction = 0.6}, 141);

  std::printf("%-6s %-8s %10s %10s %10s %9s %9s\n", "algo", "threads", "Ligra", "GB-Reset",
              "GraphBolt", "xLigra", "xReset");
  BenchJson json("table6_scaling");
  const size_t thread_counts[] = {1, 2, 4};
  auto sweep = [&](const char* name, auto make_algo) {
    for (const size_t threads : thread_counts) {
      ThreadPool::SetNumThreads(threads);
      const Row row = RunRow(split, make_algo(), batches);
      std::printf("%-6s %-8zu %10.2f %10.2f %10.2f %8.2fx %8.2fx\n", name, threads,
                  row.ligra * 1e3, row.reset * 1e3, row.bolt * 1e3, row.ligra / row.bolt,
                  row.reset / row.bolt);
      json.Row()
          .Str("algo", name)
          .Num("threads", static_cast<double>(threads))
          .Num("ligra_ms", row.ligra * 1e3)
          .Num("reset_ms", row.reset * 1e3)
          .Num("bolt_ms", row.bolt * 1e3)
          .Num("speedup_vs_ligra", row.ligra / row.bolt)
          .Num("speedup_vs_reset", row.reset / row.bolt);
    }
  };
  sweep("PR", [] { return PageRank(0.85, kBenchTolerance); });
  sweep("CoEM", [] { return CoEM(kYahoo.vertices, 0.08, 142, kBenchTolerance); });
  sweep("LP", [] { return LabelPropagation<2>(kYahoo.vertices, 0.1, 143, kBenchTolerance); });

  // Triangle counting (Ligra == GB-Reset).
  for (const size_t threads : thread_counts) {
    ThreadPool::SetNumThreads(threads);
    double reset_time = 0.0;
    double bolt_time = 0.0;
    {
      MutableGraph graph(split.initial);
      TriangleCountingResetEngine engine(&graph);
      reset_time = RunStreaming(engine, batches).avg_batch_seconds;
    }
    {
      MutableGraph graph(split.initial);
      TriangleCountingEngine engine(&graph);
      bolt_time = RunStreaming(engine, batches).avg_batch_seconds;
    }
    std::printf("%-6s %-8zu %10.2f %10.2f %10.2f %8.2fx %8.2fx\n", "TC", threads, reset_time * 1e3,
                reset_time * 1e3, bolt_time * 1e3, reset_time / bolt_time, reset_time / bolt_time);
    json.Row()
        .Str("algo", "TC")
        .Num("threads", static_cast<double>(threads))
        .Num("ligra_ms", reset_time * 1e3)
        .Num("reset_ms", reset_time * 1e3)
        .Num("bolt_ms", bolt_time * 1e3)
        .Num("speedup_vs_ligra", reset_time / bolt_time)
        .Num("speedup_vs_reset", reset_time / bolt_time);
  }
  ThreadPool::SetNumThreads(1);
  if (json.WriteFile(json.DefaultPath())) {
    std::printf("\nwrote %s\n", json.DefaultPath().c_str());
  }

  std::printf(
      "\nExpected shape (Table 6): GraphBolt fastest at every width; its\n"
      "speedup over GB-Reset is largest at low parallelism, since GB-Reset\n"
      "has more parallelizable work to recover (on real multi-core hardware\n"
      "added threads shrink the gap, as the paper reports).\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
