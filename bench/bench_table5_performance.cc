// Reproduces Table 5: execution times for Ligra (restart), GB-Reset
// (selective scheduling, restart on mutation) and GraphBolt (dependency-
// driven refinement) across six algorithms, graph surrogates, and mutation
// batch sizes. Batch sizes {10, 100, 1000} are scaled stand-ins for the
// paper's {1K, 10K, 100K} (the graphs are ~1000x smaller).
//
// Paper shape to verify: GraphBolt <= GB-Reset <= Ligra everywhere; the
// GraphBolt advantage shrinks as the batch grows; speedups are largest for
// BP/CF/TC and smallest for PR.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/belief_propagation.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/triangle_counting.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/ligra_engine.h"
#include "src/engine/reset_engine.h"

namespace graphbolt {
namespace {

constexpr size_t kBatchSizes[] = {1, 10, 100};
constexpr const char* kBatchLabels[] = {"1K*", "10K*", "100K*"};
constexpr size_t kBatchesPerSize = 2;

struct Cell {
  double ligra = 0.0;
  double reset = 0.0;
  double bolt = 0.0;
};

template <typename Algo>
Cell RunCell(const StreamSplit& split, const Algo& algo, const std::vector<MutationBatch>& batches) {
  Cell cell;
  {
    MutableGraph graph(split.initial);
    LigraEngine<Algo> engine(&graph, algo);
    cell.ligra = RunStreaming(engine, batches).avg_batch_seconds;
  }
  {
    MutableGraph graph(split.initial);
    ResetEngine<Algo> engine(&graph, algo);
    cell.reset = RunStreaming(engine, batches).avg_batch_seconds;
  }
  {
    MutableGraph graph(split.initial);
    GraphBoltEngine<Algo> engine(&graph, algo);
    cell.bolt = RunStreaming(engine, batches).avg_batch_seconds;
  }
  return cell;
}

Cell RunTriangleCell(const StreamSplit& split, const std::vector<MutationBatch>& batches) {
  Cell cell;
  {
    // Ligra == GB-Reset for TC (single-shot computation, §5.1).
    MutableGraph graph(split.initial);
    TriangleCountingResetEngine engine(&graph);
    cell.ligra = RunStreaming(engine, batches).avg_batch_seconds;
    cell.reset = cell.ligra;
  }
  {
    MutableGraph graph(split.initial);
    TriangleCountingEngine engine(&graph);
    cell.bolt = RunStreaming(engine, batches).avg_batch_seconds;
  }
  return cell;
}

void PrintAlgoBlock(const char* algo_name, const std::vector<const char*>& graph_names,
                    const std::vector<std::vector<Cell>>& cells) {
  std::printf("\n--- %s ---\n", algo_name);
  std::printf("%-10s", "");
  for (const char* g : graph_names) {
    std::printf(" | %-26s", g);
  }
  std::printf("\n%-10s", "engine");
  for (size_t i = 0; i < graph_names.size(); ++i) {
    std::printf(" | %8s %8s %8s", kBatchLabels[0], kBatchLabels[1], kBatchLabels[2]);
  }
  std::printf("\n");
  auto row = [&](const char* name, auto getter) {
    std::printf("%-10s", name);
    for (const auto& per_graph : cells) {
      std::printf(" |");
      for (const Cell& cell : per_graph) {
        std::printf(" %8.2f", getter(cell) * 1e3);
      }
    }
    std::printf("\n");
  };
  row("Ligra", [](const Cell& c) { return c.ligra; });
  row("GB-Reset", [](const Cell& c) { return c.reset; });
  row("GraphBolt", [](const Cell& c) { return c.bolt; });
  std::printf("%-10s", "xLigra");
  for (const auto& per_graph : cells) {
    std::printf(" |");
    for (const Cell& cell : per_graph) {
      std::printf(" %7.2fx", cell.ligra / cell.bolt);
    }
  }
  std::printf("\n%-10s", "xGB-Reset");
  for (const auto& per_graph : cells) {
    std::printf(" |");
    for (const Cell& cell : per_graph) {
      std::printf(" %7.2fx", cell.reset / cell.bolt);
    }
  }
  std::printf("\n");
}

void Run() {
  PrintHeader(
      "Table 5: per-batch execution time (ms) for Ligra / GB-Reset /\n"
      "GraphBolt across algorithms, graph surrogates and batch sizes.\n"
      "Batch sizes are scaled to the smaller surrogate graphs: 1K* = 1,\n10K* = 10, 100K* = 100 edges. (Even one edge on a 100K-edge surrogate\nis denser than the paper's largest batch on its billion-edge graphs,\nso these are upper bounds on the mutation pressure per column.)");

  const std::vector<Surrogate> graphs{kWiki, kTwitter, kFriendster};
  std::vector<const char*> graph_names;
  std::vector<StreamSplit> splits;
  std::vector<std::vector<std::vector<MutationBatch>>> batches;  // [graph][size][batch]
  for (const Surrogate& surrogate : graphs) {
    graph_names.push_back(surrogate.name);
    splits.push_back(MakeStream(surrogate, /*weighted=*/true));
    std::vector<std::vector<MutationBatch>> per_size;
    for (const size_t size : kBatchSizes) {
      per_size.push_back(MakeBatches(splits.back(), kBatchesPerSize,
                                     {.size = size, .add_fraction = 0.6}, surrogate.seed + 7));
    }
    batches.push_back(std::move(per_size));
  }

  BenchJson json("table5_performance");
  auto emit_rows = [&](const char* name, const std::vector<std::vector<Cell>>& cells) {
    for (size_t g = 0; g < graphs.size(); ++g) {
      for (size_t s = 0; s < 3; ++s) {
        const Cell& cell = cells[g][s];
        json.Row()
            .Str("algo", name)
            .Str("graph", graph_names[g])
            .Str("batch_label", kBatchLabels[s])
            .Num("ligra_ms", cell.ligra * 1e3)
            .Num("reset_ms", cell.reset * 1e3)
            .Num("bolt_ms", cell.bolt * 1e3)
            .Num("speedup_vs_ligra", cell.ligra / cell.bolt)
            .Num("speedup_vs_reset", cell.reset / cell.bolt);
      }
    }
  };
  auto run_algo = [&](const char* name, auto make_algo) {
    std::vector<std::vector<Cell>> cells(graphs.size());
    for (size_t g = 0; g < graphs.size(); ++g) {
      for (size_t s = 0; s < 3; ++s) {
        cells[g].push_back(RunCell(splits[g], make_algo(graphs[g]), batches[g][s]));
      }
    }
    PrintAlgoBlock(name, graph_names, cells);
    emit_rows(name, cells);
  };

  run_algo("PR", [](const Surrogate&) { return PageRank(0.85, kBenchTolerance); });
  run_algo("BP", [](const Surrogate&) { return BeliefPropagation<3>(13, kBenchTolerance); });
  run_algo("CF", [](const Surrogate&) { return CollaborativeFiltering<4>(0.05, 17, kBenchTolerance, 0.3); });
  run_algo("CoEM", [](const Surrogate& s) { return CoEM(s.vertices, 0.08, s.seed + 9, kBenchTolerance); });
  run_algo("LP",
           [](const Surrogate& s) { return LabelPropagation<2>(s.vertices, 0.1, s.seed + 11, kBenchTolerance); });

  {
    std::vector<std::vector<Cell>> cells(graphs.size());
    for (size_t g = 0; g < graphs.size(); ++g) {
      for (size_t s = 0; s < 3; ++s) {
        cells[g].push_back(RunTriangleCell(splits[g], batches[g][s]));
      }
    }
    PrintAlgoBlock("TC", graph_names, cells);
    emit_rows("TC", cells);
  }

  if (json.WriteFile(json.DefaultPath())) {
    std::printf("\nwrote %s\n", json.DefaultPath().c_str());
  }

  std::printf(
      "\nExpected shape (paper Table 5): GraphBolt < GB-Reset < Ligra in\n"
      "every cell; speedups decay with batch size; BP/CF/TC show the\n"
      "largest GraphBolt gains, PR the smallest.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
