// Reproduces Figure 9: SSSP against KickStarter and Differential Dataflow.
//   9a: per-batch time vs batch size with mixed additions + deletions.
//   9b: additions only (no min re-evaluation needed, so GraphBolt and
//       KickStarter converge toward each other).
//
// Paper shape: KickStarter < GraphBolt at every batch size (it exploits
// monotonicity and tracks one dependence edge per vertex, versus
// GraphBolt's full per-iteration history and pull-based min re-evaluation);
// the gap narrows for additions-only.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/sssp.h"
#include "src/core/graphbolt_engine.h"
#include "src/kickstarter/kickstarter.h"
#include "src/minidd/dataflow.h"

namespace graphbolt {
namespace {

constexpr size_t kSweep[] = {1, 10, 100, 1000, 10000};

void SweepCase(const char* title, const StreamSplit& split, double add_fraction, uint64_t seed) {
  std::printf("\n%s\n%-8s %14s %12s %14s\n", title, "batch", "KickStarter", "GraphBolt",
              "DiffDataflow");
  for (const size_t size : kSweep) {
    const auto batches = MakeBatches(split, 2, {.size = size, .add_fraction = add_fraction}, seed);

    double ks_time = 0.0;
    {
      MutableGraph graph(split.initial);
      KickStarterSssp engine(&graph, 0);
      ks_time = RunStreaming(engine, batches).avg_batch_seconds;
    }
    double bolt_time = 0.0;
    {
      MutableGraph graph(split.initial);
      GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                                   {.max_iterations = 512, .run_to_convergence = true});
      bolt_time = RunStreaming(engine, batches).avg_batch_seconds;
    }
    double dd_time = 0.0;
    {
      DdSssp dd(split.initial, 0);
      dd.InitialCompute();
      for (const auto& batch : batches) {
        dd.ApplyUpdates(batch);
        dd_time += dd.stats().seconds;
      }
      dd_time /= static_cast<double>(batches.size());
    }
    std::printf("%-8zu %14.3f %12.3f %14.3f\n", size, ks_time * 1e3, bolt_time * 1e3,
                dd_time * 1e3);
  }
}

void Run() {
  PrintHeader(
      "Figure 9: SSSP per-batch time (ms) — KickStarter vs GraphBolt vs\n"
      "Differential Dataflow, TwitterMPI surrogate (weighted).");

  const Surrogate surrogate{"TT*", 25000, 350000, 171};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);

  SweepCase("Figure 9a: additions + deletions", split, 0.5, 172);
  SweepCase("Figure 9b: additions only", split, 1.0, 173);

  // Edge-computation comparison backing the paper's "KickStarter performs
  // 14x fewer edge computations" observation.
  {
    const auto batches = MakeBatches(split, 2, {.size = 1000, .add_fraction = 0.5}, 174);
    uint64_t ks_edges = 0;
    uint64_t bolt_edges = 0;
    {
      MutableGraph graph(split.initial);
      KickStarterSssp engine(&graph, 0);
      ks_edges = RunStreaming(engine, batches).avg_edges;
    }
    {
      MutableGraph graph(split.initial);
      GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                                   {.max_iterations = 512, .run_to_convergence = true});
      bolt_edges = RunStreaming(engine, batches).avg_edges;
    }
    std::printf(
        "\nEdge computations per 1K-batch: KickStarter=%llu GraphBolt=%llu "
        "(GraphBolt/KickStarter = %.1fx)\n",
        static_cast<unsigned long long>(ks_edges), static_cast<unsigned long long>(bolt_edges),
        static_cast<double>(bolt_edges) / static_cast<double>(ks_edges ? ks_edges : 1));
  }

  std::printf(
      "\nExpected shape (Figure 9): KickStarter fastest (monotonic asynchrony,\n"
      "minimal dependence state); GraphBolt pays for BSP-exact per-iteration\n"
      "history and min re-evaluation, mostly on deletions (9a vs 9b).\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
