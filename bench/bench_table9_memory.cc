// Reproduces Table 9: the memory overhead of GraphBolt's dependency
// tracking relative to GB-Reset. GB-Reset's footprint is the graph plus one
// value and one aggregation array; GraphBolt adds the dependency store
// (per-iteration aggregations after vertical pruning, plus changed-bit
// vectors). We report the store's logical footprint as a percentage of the
// GB-Reset baseline, per algorithm and graph surrogate.
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/algorithms/belief_propagation.h"
#include "src/core/compact_dependency_store.h"
#include "src/algorithms/coem.h"
#include "src/algorithms/collaborative_filtering.h"
#include "src/algorithms/label_propagation.h"
#include "src/algorithms/pagerank.h"
#include "src/core/graphbolt_engine.h"

namespace graphbolt {
namespace {

// GB-Reset state: one Value array + one Aggregate array + the dual CSR/CSC.
template <typename Algo>
uint64_t ResetFootprintBytes(const MutableGraph& graph) {
  const uint64_t n = graph.num_vertices();
  const uint64_t m = graph.num_edges();
  const uint64_t graph_bytes = 2 * (m * (sizeof(VertexId) + sizeof(Weight)) +
                                    (n + 1) * sizeof(EdgeIndex));
  return graph_bytes + n * sizeof(typename Algo::Value) + n * sizeof(typename Algo::Aggregate);
}

template <typename Algo>
void Row(const char* name, const char* graph_name, const StreamSplit& split, const Algo& algo,
         BenchJson& json) {
  std::printf("%-6s", name);
  MutableGraph graph(split.initial);
  GraphBoltEngine<Algo> engine(&graph, algo);
  engine.InitialCompute();
  const uint64_t base = ResetFootprintBytes<Algo>(graph);
  const uint64_t store = engine.store().actual_bytes();

  // The compact per-vertex backend (§4.1 layout) realizes vertical pruning
  // as actual allocation, not just accounting.
  MutableGraph compact_graph(split.initial);
  GraphBoltEngine<Algo, CompactDependencyStore<typename Algo::Aggregate>> compact(
      &compact_graph, algo);
  compact.InitialCompute();
  const uint64_t compact_bytes = compact.store().logical_bytes();

  std::printf(" %8.1f MB %9.1f MB %8.1f%% %9.1f MB %8.1f%%  (kept: %.0f%% of V*t)\n",
              static_cast<double>(base) / 1048576.0, static_cast<double>(store) / 1048576.0,
              100.0 * static_cast<double>(store) / static_cast<double>(base),
              static_cast<double>(compact_bytes) / 1048576.0,
              100.0 * static_cast<double>(compact_bytes) / static_cast<double>(base),
              100.0 * static_cast<double>(compact.store().logical_entries()) /
                  (static_cast<double>(graph.num_vertices()) * compact.store().tracked_levels()));
  json.Row()
      .Str("algo", name)
      .Str("graph", graph_name)
      .Num("base_mb", static_cast<double>(base) / 1048576.0)
      .Num("dense_mb", static_cast<double>(store) / 1048576.0)
      .Num("dense_overhead", static_cast<double>(store) / static_cast<double>(base))
      .Num("compact_mb", static_cast<double>(compact_bytes) / 1048576.0)
      .Num("compact_overhead", static_cast<double>(compact_bytes) / static_cast<double>(base));
}

void Run() {
  PrintHeader(
      "Table 9: dependency-store memory overhead of GraphBolt relative to\n"
      "the GB-Reset baseline (graph + value + aggregation arrays). The\n"
      "'entries kept' column shows vertical pruning at work: stabilized\n"
      "per-vertex aggregations are not re-stored.");

  BenchJson json("table9_memory");
  for (const Surrogate& surrogate : {kWiki, kFriendster}) {
    std::printf("\nGraph %s (%u vertices, %llu edges after 50%% load):\n", surrogate.name,
                surrogate.vertices, static_cast<unsigned long long>(surrogate.edges / 2));
    std::printf("%-6s %11s %12s %9s %12s %9s\n", "algo", "GB-Reset", "dense", "ovh", "compact",
                "ovh");
    StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
    Row("PR", surrogate.name, split, PageRank(0.85, kBenchTolerance), json);
    Row("BP", surrogate.name, split, BeliefPropagation<3>(13, kBenchTolerance), json);
    Row("CoEM", surrogate.name, split, CoEM(surrogate.vertices, 0.08, surrogate.seed + 71, kBenchTolerance), json);
    Row("LP", surrogate.name, split, LabelPropagation<2>(surrogate.vertices, 0.1, surrogate.seed + 72, kBenchTolerance), json);
    Row("CF", surrogate.name, split, CollaborativeFiltering<4>(0.05, 17, kBenchTolerance, 0.3), json);
  }

  if (json.WriteFile(json.DefaultPath())) {
    std::printf("\nwrote %s\n", json.DefaultPath().c_str());
  }

  std::printf(
      "\nExpected shape (Table 9): overhead is a bounded fraction of the\n"
      "baseline; scalar-aggregation algorithms (PR, CoEM) cheapest, wide\n"
      "aggregations (CF: K^2+K doubles per vertex) the most expensive.\n"
      "Absolute percentages differ from the paper's 11-59%% because our\n"
      "surrogate graphs are far sparser per vertex than Twitter/Yahoo, so\n"
      "the graph structure contributes less to the baseline.\n");
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
