// Ablation benches for the design choices DESIGN.md calls out (not a paper
// table — these justify the implementation decisions):
//
//   A1. Horizontal pruning depth: refinement time and store footprint as
//       the tracked history shrinks from all 10 iterations to 1, with the
//       hybrid continuation covering the rest.
//   A2. GB-Reset direction optimization: sparse-push-only vs the
//       dense-pull switch.
//   A3. Dependency-store backend: dense per-level arrays vs the compact
//       per-vertex layout (time vs memory trade).
//   A4. Monotonic push fast path: addition-only SSSP batches with and
//       without the push shortcut.
//   A5. propagateDelta vs retract+propagate pairs for a simple aggregation
//       (the within-engine view of Figure 8's GraphBolt vs GraphBolt-RP).
#include <cstdio>

#include "bench/harness.h"
#include "src/algorithms/pagerank.h"
#include "src/algorithms/sssp.h"
#include "src/core/compact_dependency_store.h"
#include "src/core/graphbolt_engine.h"
#include "src/engine/reset_engine.h"

namespace graphbolt {
namespace {

void AblateHistoryDepth() {
  std::printf("\nA1. Horizontal pruning depth (PR, TT*, 100-mutation batches):\n");
  std::printf("%-10s %12s %12s %14s\n", "history", "refine(ms)", "edges(k)", "store bytes(MB)");
  const Surrogate surrogate{"TT*", 25000, 320000, 301};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
  const auto batches = MakeBatches(split, 3, {.size = 100, .add_fraction = 0.6}, 302);
  for (const uint32_t history : {1u, 2u, 5u, 10u}) {
    MutableGraph graph(split.initial);
    GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance),
                                     {.max_iterations = 10, .history_size = history});
    const StreamingResult result = RunStreaming(engine, batches);
    std::printf("%-10u %12.2f %12.0f %14.2f\n", history, result.avg_batch_seconds * 1e3,
                static_cast<double>(result.avg_edges) / 1e3,
                static_cast<double>(engine.store().actual_bytes()) / 1048576.0);
  }
  std::printf(
      "Expected: shallower history = smaller store but more continuation\n"
      "work (the hybrid replay recomputes instead of refining).\n");
}

void AblateDirectionOptimization() {
  std::printf("\nA2. GB-Reset direction optimization (PR, TT*, restart cost):\n");
  std::printf("%-22s %12s %12s\n", "dense_threshold", "restart(ms)", "edges(k)");
  const Surrogate surrogate{"TT*", 25000, 320000, 303};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
  const auto batches = MakeBatches(split, 2, {.size = 100, .add_fraction = 0.6}, 304);
  struct Setting {
    const char* label;
    double threshold;
  };
  for (const Setting s : {Setting{"push only (off)", 2.0}, Setting{"|E|/2 (default)", 0.5},
                          Setting{"|E|/20 (eager)", 0.05}}) {
    MutableGraph graph(split.initial);
    ResetEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance),
                                 {.max_iterations = 10, .dense_threshold = s.threshold});
    const StreamingResult result = RunStreaming(engine, batches);
    std::printf("%-22s %12.2f %12.0f\n", s.label, result.avg_batch_seconds * 1e3,
                static_cast<double>(result.avg_edges) / 1e3);
  }
  std::printf(
      "Expected: dense pulls win when most vertices are active (one pass,\n"
      "no atomics/retraction); eager switching can overshoot once the\n"
      "active set shrinks.\n");
}

void AblateStoreBackend() {
  std::printf("\nA3. Dependency-store backend (PR, TT*):\n");
  std::printf("%-10s %12s %14s %16s\n", "backend", "refine(ms)", "initial(ms)", "store bytes(MB)");
  const Surrogate surrogate{"TT*", 25000, 320000, 305};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
  const auto batches = MakeBatches(split, 3, {.size = 100, .add_fraction = 0.6}, 306);
  {
    MutableGraph graph(split.initial);
    GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance));
    const StreamingResult result = RunStreaming(engine, batches);
    std::printf("%-10s %12.2f %14.2f %16.2f\n", "dense", result.avg_batch_seconds * 1e3,
                result.initial_seconds * 1e3,
                static_cast<double>(engine.store().actual_bytes()) / 1048576.0);
  }
  {
    MutableGraph graph(split.initial);
    GraphBoltEngine<PageRank, CompactDependencyStore<double>> engine(
        &graph, PageRank(0.85, kBenchTolerance));
    const StreamingResult result = RunStreaming(engine, batches);
    std::printf("%-10s %12.2f %14.2f %16.2f\n", "compact", result.avg_batch_seconds * 1e3,
                result.initial_seconds * 1e3,
                static_cast<double>(engine.store().actual_bytes()) / 1048576.0);
  }
  std::printf(
      "Expected: compact trades some time (per-vertex indirection,\n"
      "materialize/commit, tail management) for a footprint that tracks\n"
      "actual value churn instead of V*t.\n");
}

void AblateMonotonicPush() {
  std::printf("\nA4. Monotonic push fast path (SSSP, TT*, addition-only batches):\n");
  std::printf("%-14s %12s %12s\n", "fast path", "refine(ms)", "edges(k)");
  const Surrogate surrogate{"TT*", 25000, 320000, 307};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
  const auto batches = MakeBatches(split, 3, {.size = 100, .add_fraction = 1.0}, 308);
  for (const bool disabled : {false, true}) {
    MutableGraph graph(split.initial);
    GraphBoltEngine<Sssp> engine(&graph, Sssp(0),
                                 {.max_iterations = 512,
                                  .run_to_convergence = true,
                                  .disable_monotonic_push = disabled});
    const StreamingResult result = RunStreaming(engine, batches);
    std::printf("%-14s %12.2f %12.0f\n", disabled ? "off (re-eval)" : "on (push)",
                result.avg_batch_seconds * 1e3, static_cast<double>(result.avg_edges) / 1e3);
  }
  std::printf(
      "Expected: pushing improved contributions skips the full\n"
      "in-neighborhood pulls, cutting both time and edge computations\n"
      "(the §5.4B observation about additions).\n");
}

void AblateDeltaVsRetractPropagate() {
  std::printf("\nA5. propagateDelta vs retract+propagate (PR, TT*):\n");
  std::printf("%-22s %12s\n", "mode", "refine(ms)");
  const Surrogate surrogate{"TT*", 25000, 320000, 309};
  StreamSplit split = MakeStream(surrogate, /*weighted=*/true);
  const auto batches = MakeBatches(split, 3, {.size = 100, .add_fraction = 0.6}, 310);
  for (const bool rp : {false, true}) {
    MutableGraph graph(split.initial);
    GraphBoltEngine<PageRank> engine(&graph, PageRank(0.85, kBenchTolerance),
                                     {.use_retract_propagate = rp});
    const StreamingResult result = RunStreaming(engine, batches);
    std::printf("%-22s %12.2f\n", rp ? "retract+propagate" : "propagateDelta",
                result.avg_batch_seconds * 1e3);
  }
  std::printf(
      "Expected: the combined delta halves the aggregation operations per\n"
      "transitive edge (one atomic add instead of two).\n");
}

void Run() {
  PrintHeader("Ablations: design choices called out in DESIGN.md");
  AblateHistoryDepth();
  AblateDirectionOptimization();
  AblateStoreBackend();
  AblateMonotonicPush();
  AblateDeltaVsRetractPropagate();
}

}  // namespace
}  // namespace graphbolt

int main() {
  graphbolt::Run();
  return 0;
}
